//! Per-operation latency measurement.
//!
//! Throughput (the paper's headline metric) hides tail behaviour —
//! and SEC is *blocking*: a non-combiner waits for its batch's freezer
//! and combiner, so its latency distribution has structure that
//! Mops/s can't show (the paper touches this when discussing TSI's
//! interval delays "increasing latency"). This module provides a
//! latency histogram and a fixed-work latency runner; the `latency`
//! bench binary prints p50/p90/p99/p999/max per algorithm.

use crate::spec::{KeyDist, MapMix, MapOpKind, Mix, OpKind};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sec_core::counter::SecCounter;
use sec_core::trace::Histogram;
use sec_core::{
    ConcurrentMap, ConcurrentQueue, ConcurrentStack, MapHandle, QueueHandle, StackHandle,
};
use std::sync::Barrier;
use std::time::Instant;

/// A latency histogram over nanoseconds: a thin wrapper around the
/// sec-trace HDR-style [`Histogram`] (16 linear sub-buckets per power
/// of two, ≤ 6.25% relative error — the same layout the engine's phase
/// histograms use, so the bench CSVs report comparable numbers).
#[derive(Debug, Default)]
pub struct LatencyHistogram(Histogram);

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, ns: u64) {
        self.0.record(ns);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.0.count()
    }

    /// Exact maximum recorded value.
    pub fn max_ns(&self) -> u64 {
        self.0.max()
    }

    /// Approximate `p`-th percentile (`0.0 < p <= 100.0`) in ns.
    pub fn percentile(&self, p: f64) -> u64 {
        self.0.percentile(p)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        self.0.merge(&other.0);
    }

    /// The wrapped sec-trace histogram (for callers that want the full
    /// distribution, e.g. to merge with engine-phase histograms).
    pub fn inner(&self) -> &Histogram {
        &self.0
    }
}

/// Percentile summary of one latency measurement.
#[derive(Debug, Clone, Copy)]
pub struct LatencyReport {
    /// Median, ns.
    pub p50: u64,
    /// 90th percentile, ns.
    pub p90: u64,
    /// 99th percentile, ns.
    pub p99: u64,
    /// 99.9th percentile, ns.
    pub p999: u64,
    /// Maximum, ns.
    pub max: u64,
    /// Samples.
    pub samples: u64,
}

impl LatencyReport {
    /// Summarizes a merged histogram.
    pub fn from_histogram(h: &LatencyHistogram) -> Self {
        Self {
            p50: h.percentile(50.0),
            p90: h.percentile(90.0),
            p99: h.percentile(99.0),
            p999: h.percentile(99.9),
            max: h.max_ns(),
            samples: h.count(),
        }
    }
}

/// Runs `ops_per_thread` timed operations of `mix` on each of `threads`
/// workers and returns the merged latency distribution.
pub fn measure_latency<S: ConcurrentStack<u64>>(
    stack: &S,
    threads: usize,
    ops_per_thread: u64,
    mix: Mix,
) -> LatencyReport {
    let barrier = Barrier::new(threads);
    let merged = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let stack = &stack;
                let barrier = &barrier;
                scope.spawn(move || {
                    let mut h = stack.register();
                    let mut rng = SmallRng::seed_from_u64(0xA11CE ^ (t as u64) << 8);
                    let mut hist = LatencyHistogram::new();
                    barrier.wait();
                    for _ in 0..ops_per_thread {
                        let kind = mix.classify(rng.gen_range(0..100));
                        let start = Instant::now();
                        match kind {
                            OpKind::Push => h.push(rng.gen_range(0..100_000)),
                            OpKind::Pop => {
                                let _ = h.pop();
                            }
                            OpKind::Peek => {
                                let _ = h.peek();
                            }
                        }
                        hist.record(start.elapsed().as_nanos() as u64);
                    }
                    hist
                })
            })
            .collect();
        let mut merged = LatencyHistogram::new();
        for h in handles {
            merged.merge(&h.join().expect("latency worker panicked"));
        }
        merged
    });
    LatencyReport::from_histogram(&merged)
}

/// The queue-family twin of [`measure_latency`]: a [`Mix`] draw that
/// would `peek` a stack performs a `dequeue` (queues have no read-only
/// operation).
pub fn measure_queue_latency<Q: ConcurrentQueue<u64>>(
    queue: &Q,
    threads: usize,
    ops_per_thread: u64,
    mix: Mix,
) -> LatencyReport {
    let barrier = Barrier::new(threads);
    let merged = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let queue = &queue;
                let barrier = &barrier;
                scope.spawn(move || {
                    let mut h = queue.register();
                    let mut rng = SmallRng::seed_from_u64(0xA11CE ^ (t as u64) << 8);
                    let mut hist = LatencyHistogram::new();
                    barrier.wait();
                    for _ in 0..ops_per_thread {
                        let kind = mix.classify(rng.gen_range(0..100));
                        let start = Instant::now();
                        match kind {
                            OpKind::Push => h.enqueue(rng.gen_range(0..100_000)),
                            OpKind::Pop | OpKind::Peek => {
                                let _ = h.dequeue();
                            }
                        }
                        hist.record(start.elapsed().as_nanos() as u64);
                    }
                    hist
                })
            })
            .collect();
        let mut merged = LatencyHistogram::new();
        for h in handles {
            merged.merge(&h.join().expect("latency worker panicked"));
        }
        merged
    });
    LatencyReport::from_histogram(&merged)
}

/// The map-family twin of [`measure_latency`]: operations draw a key
/// from `dist` and a get/insert/remove kind from `map_mix`.
pub fn measure_map_latency<M: ConcurrentMap<u64, u64>>(
    map: &M,
    threads: usize,
    ops_per_thread: u64,
    map_mix: MapMix,
    dist: KeyDist,
) -> LatencyReport {
    let sampler = dist.sampler();
    let barrier = Barrier::new(threads);
    let merged = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let map = &map;
                let barrier = &barrier;
                let sampler = &sampler;
                scope.spawn(move || {
                    let mut h = map.register();
                    let mut rng = SmallRng::seed_from_u64(0xA11CE ^ (t as u64) << 8);
                    let mut hist = LatencyHistogram::new();
                    barrier.wait();
                    for _ in 0..ops_per_thread {
                        let key = sampler.sample(&mut rng);
                        let kind = map_mix.classify(rng.gen_range(0..100));
                        let value = rng.gen_range(0..100_000);
                        let start = Instant::now();
                        match kind {
                            MapOpKind::Get => {
                                let _ = h.get(&key);
                            }
                            MapOpKind::Insert => {
                                let _ = h.insert(key, value);
                            }
                            MapOpKind::Remove => {
                                let _ = h.remove(&key);
                            }
                        }
                        hist.record(start.elapsed().as_nanos() as u64);
                    }
                    hist
                })
            })
            .collect();
        let mut merged = LatencyHistogram::new();
        for h in handles {
            merged.merge(&h.join().expect("latency worker panicked"));
        }
        merged
    });
    LatencyReport::from_histogram(&merged)
}

/// The counter-family twin of [`measure_latency`]: a [`Mix`] draw that
/// would `push` or `pop` performs a `fetch_add`; a `peek` draw performs
/// a `load`.
pub fn measure_counter_latency(
    counter: &SecCounter,
    threads: usize,
    ops_per_thread: u64,
    mix: Mix,
) -> LatencyReport {
    let barrier = Barrier::new(threads);
    let merged = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let counter = &counter;
                let barrier = &barrier;
                scope.spawn(move || {
                    let mut h = counter.register();
                    let mut rng = SmallRng::seed_from_u64(0xA11CE ^ (t as u64) << 8);
                    let mut hist = LatencyHistogram::new();
                    barrier.wait();
                    for _ in 0..ops_per_thread {
                        let kind = mix.classify(rng.gen_range(0..100));
                        let delta = rng.gen_range(0..100_000);
                        let start = Instant::now();
                        match kind {
                            OpKind::Push | OpKind::Pop => {
                                let _ = h.fetch_add(delta);
                            }
                            OpKind::Peek => {
                                let _ = h.load();
                            }
                        }
                        hist.record(start.elapsed().as_nanos() as u64);
                    }
                    hist
                })
            })
            .collect();
        let mut merged = LatencyHistogram::new();
        for h in handles {
            merged.merge(&h.join().expect("latency worker panicked"));
        }
        merged
    });
    LatencyReport::from_histogram(&merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sec_core::SecStack;

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn percentiles_are_monotone_and_bounded() {
        let mut h = LatencyHistogram::new();
        for ns in [10u64, 20, 30, 100, 1_000, 10_000, 100_000] {
            h.record(ns);
        }
        let p50 = h.percentile(50.0);
        let p90 = h.percentile(90.0);
        let p99 = h.percentile(99.0);
        assert!(p50 <= p90 && p90 <= p99);
        // Percentiles report bucket upper edges (snapshot-pure, no
        // min/max clamp), so p99 may exceed the exact max by at most
        // one sub-bucket width (1/16 relative) plus one.
        let max = h.max_ns();
        assert!(p99 <= max + max / 16 + 1, "p99 {p99} vs max {max}");
        assert_eq!(h.max_ns(), 100_000);
    }

    #[test]
    fn bucket_resolution_within_2x() {
        let mut h = LatencyHistogram::new();
        for _ in 0..1000 {
            h.record(700);
        }
        let p50 = h.percentile(50.0);
        assert!((700..=1400).contains(&p50), "got {p50}");
    }

    #[test]
    fn merge_combines_counts_and_max() {
        let mut a = LatencyHistogram::new();
        a.record(100);
        let mut b = LatencyHistogram::new();
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max_ns(), 1_000_000);
    }

    #[test]
    fn zero_nanosecond_sample_is_accepted() {
        let mut h = LatencyHistogram::new();
        h.record(0); // small values are exact in the HDR layout
        assert_eq!(h.count(), 1);
        assert_eq!(h.percentile(100.0), 0);
    }

    #[test]
    fn report_carries_p999() {
        let mut h = LatencyHistogram::new();
        for _ in 0..999 {
            h.record(100);
        }
        h.record(1_000_000);
        let r = LatencyReport::from_histogram(&h);
        assert!(r.p50 < r.p999, "p50 {} p999 {}", r.p50, r.p999);
        assert!(r.p999 <= r.max + r.max / 16 + 1);
    }

    #[test]
    fn end_to_end_latency_measurement() {
        let stack: SecStack<u64> = SecStack::new(3);
        let r = measure_latency(&stack, 2, 500, Mix::UPDATE_100);
        assert_eq!(r.samples, 1_000);
        assert!(r.p50 > 0);
        assert!(r.p50 <= r.p99);
        assert!(r.p99 <= r.max + r.max / 16 + 1);
    }

    #[test]
    fn end_to_end_queue_latency_measurement() {
        use sec_core::SecQueue;
        let queue: SecQueue<u64> = SecQueue::new(2);
        let r = measure_queue_latency(&queue, 2, 500, Mix::UPDATE_100);
        assert_eq!(r.samples, 1_000);
        assert!(r.p50 > 0);
        assert!(r.p50 <= r.p99);
        assert!(r.p99 <= r.max + r.max / 16 + 1);
    }

    #[test]
    fn end_to_end_map_latency_measurement() {
        use sec_core::SecMap;
        let map: SecMap<u64, u64> = SecMap::new(3);
        let r = measure_map_latency(
            &map,
            2,
            500,
            MapMix::WRITE_HEAVY,
            KeyDist::Uniform { keys: 64 },
        );
        assert_eq!(r.samples, 1_000);
        assert!(r.p50 > 0);
        assert!(r.p50 <= r.p99);
        assert!(r.p99 <= r.max + r.max / 16 + 1);
    }

    #[test]
    fn end_to_end_counter_latency_measurement() {
        let counter = SecCounter::new(3);
        let r = measure_counter_latency(&counter, 2, 500, Mix::UPDATE_100);
        assert_eq!(r.samples, 1_000);
        assert!(r.p50 > 0);
        assert!(r.p50 <= r.p99);
        assert!(r.p99 <= r.max + r.max / 16 + 1);
    }
}
