//! Open-loop traffic replay: service-style benchmarking where *time*,
//! not the benchmark loop, decides when work arrives.
//!
//! The closed-loop runners elsewhere in this crate (`run_throughput`
//! and friends) issue the next operation the moment the previous one
//! returns — so when the structure slows down, the offered load
//! politely slows down with it, and the measured latency suffers from
//! coordinated omission: the stalls hide in the gaps between requests.
//! This module does the opposite, wrk2-style:
//!
//! * an [`ArrivalTrace`] fixes every request's *scheduled* arrival
//!   time up front (synthetic generators for steady, bursty, diurnal
//!   and multi-tenant traffic, plus a tiny committed text format for
//!   exact reproduction);
//! * [`replay_open_loop`] replays the trace against a
//!   [`SecQueue`]+[`SecMap`] service (the `examples/pipeline.rs`
//!   shape): a dispatcher enqueues each request at its scheduled time
//!   — *whether or not the service kept up* — and worker threads drain
//!   the queue and execute the request against the map;
//! * every completion is charged from its **scheduled arrival**, not
//!   from dequeue: queueing delay while the service is behind is part
//!   of the latency, so overload is visible instead of omitted;
//! * completions are bucketed into fixed wall-clock windows by arrival
//!   time; a window whose over-SLO share exceeds the configured
//!   fraction is an **SLO-violation window** — the operator's view
//!   ("how many seconds of the day were bad") rather than a single
//!   run-wide percentile.
//!
//! The `replay` bench binary sweeps a load multiplier over these
//! scenarios and writes throughput, p50/p99/p999-vs-offered-load and
//! violation-window counts as CSV/JSON.

use crate::latency::{LatencyHistogram, LatencyReport};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sec_core::{SecMap, SecQueue};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;
use std::time::Instant;

/// One scheduled request: when it arrives and which tenant sent it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Scheduled arrival, nanoseconds from the replay epoch.
    pub at_ns: u64,
    /// Originating tenant (selects the key range the request touches).
    pub tenant: u32,
}

/// A fixed sequence of scheduled arrivals, sorted by time.
///
/// Generators are deterministic in their seed, so a `(generator,
/// seed)` pair names a workload exactly; [`ArrivalTrace::to_text`] /
/// [`ArrivalTrace::parse`] round-trip the schedule through a small
/// text format for committing regression traces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrivalTrace {
    arrivals: Vec<Arrival>,
}

/// Uniform draw in the open interval (0, 1]: 53 random mantissa bits
/// (the vendored rand only samples integer ranges), nudged off zero so
/// `ln` stays finite.
fn unit_open(rng: &mut SmallRng) -> f64 {
    (((rng.gen_range(0..u64::MAX) >> 11) + 1) as f64) * (1.0 / (1u64 << 53) as f64)
}

/// Draws the next exponential inter-arrival gap (ns) for a Poisson
/// process of `rate_per_s`, from uniform randomness — the standard
/// inverse-CDF transform.
fn exp_gap_ns(rng: &mut SmallRng, rate_per_s: f64) -> u64 {
    let secs = -unit_open(rng).ln() / rate_per_s;
    (secs * 1e9) as u64 + 1
}

impl ArrivalTrace {
    /// Wraps an explicit arrival list (sorted by `at_ns`; the
    /// constructor sorts defensively so hand-built lists are fine).
    pub fn from_arrivals(mut arrivals: Vec<Arrival>) -> Self {
        arrivals.sort_by_key(|a| a.at_ns);
        Self { arrivals }
    }

    /// Steady Poisson traffic: exponential inter-arrival gaps at
    /// `rate_per_s`, single tenant, for `duration_ms`.
    pub fn steady(rate_per_s: f64, duration_ms: u64, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let end = duration_ms * 1_000_000;
        let mut arrivals = Vec::new();
        let mut t = 0u64;
        loop {
            t += exp_gap_ns(&mut rng, rate_per_s);
            if t >= end {
                break;
            }
            arrivals.push(Arrival {
                at_ns: t,
                tenant: 0,
            });
        }
        Self { arrivals }
    }

    /// Bursty traffic: a Poisson base rate with periodic bursts —
    /// every `period_ms`, the rate jumps to `burst_rate_per_s` for
    /// `burst_ms`. The classic flash-crowd shape: the steady state is
    /// comfortable, the bursts are where SLOs die.
    pub fn bursty(
        base_rate_per_s: f64,
        burst_rate_per_s: f64,
        period_ms: u64,
        burst_ms: u64,
        duration_ms: u64,
        seed: u64,
    ) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let end = duration_ms * 1_000_000;
        let period = period_ms.max(1) * 1_000_000;
        let burst = burst_ms * 1_000_000;
        let mut arrivals = Vec::new();
        let mut t = 0u64;
        loop {
            let in_burst = t % period < burst;
            let rate = if in_burst {
                burst_rate_per_s
            } else {
                base_rate_per_s
            };
            t += exp_gap_ns(&mut rng, rate);
            if t >= end {
                break;
            }
            arrivals.push(Arrival {
                at_ns: t,
                tenant: 0,
            });
        }
        Self { arrivals }
    }

    /// Diurnal traffic: a Poisson process whose rate swings
    /// sinusoidally between `trough_rate_per_s` and `peak_rate_per_s`
    /// with period `period_ms` — a day compressed into the run.
    /// Generated by thinning a peak-rate process (accept with
    /// probability `rate(t)/peak`), which keeps the non-homogeneous
    /// process exact.
    pub fn diurnal(
        trough_rate_per_s: f64,
        peak_rate_per_s: f64,
        period_ms: u64,
        duration_ms: u64,
        seed: u64,
    ) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let end = duration_ms * 1_000_000;
        let period_ns = (period_ms.max(1) * 1_000_000) as f64;
        let mut arrivals = Vec::new();
        let mut t = 0u64;
        loop {
            t += exp_gap_ns(&mut rng, peak_rate_per_s);
            if t >= end {
                break;
            }
            let phase = (t as f64 / period_ns) * std::f64::consts::TAU;
            // Sine swings [-1, 1] → rate swings [trough, peak].
            let rate = trough_rate_per_s
                + (peak_rate_per_s - trough_rate_per_s) * (0.5 + 0.5 * phase.sin());
            if rng.gen_bool((rate / peak_rate_per_s).clamp(0.0, 1.0)) {
                arrivals.push(Arrival {
                    at_ns: t,
                    tenant: 0,
                });
            }
        }
        Self { arrivals }
    }

    /// Multi-tenant traffic: one independent Poisson lane per entry of
    /// `rates_per_s` (its index is the tenant id), merged into one
    /// schedule. Tenants address disjoint key ranges in the service,
    /// so a hot tenant contends on *its* shard while the others ride
    /// along — the noisy-neighbour scenario.
    pub fn multi_tenant(rates_per_s: &[f64], duration_ms: u64, seed: u64) -> Self {
        let end = duration_ms * 1_000_000;
        let mut arrivals = Vec::new();
        for (tenant, &rate) in rates_per_s.iter().enumerate() {
            let mut rng = SmallRng::seed_from_u64(seed ^ ((tenant as u64 + 1) << 32));
            let mut t = 0u64;
            loop {
                t += exp_gap_ns(&mut rng, rate);
                if t >= end {
                    break;
                }
                arrivals.push(Arrival {
                    at_ns: t,
                    tenant: tenant as u32,
                });
            }
        }
        Self::from_arrivals(arrivals)
    }

    /// Scales the offered load by `factor` by compressing (or
    /// stretching) the schedule: every timestamp is divided by
    /// `factor`, so 2.0 offers the same arrivals in half the time.
    /// This is how the `replay` binary sweeps load from the same base
    /// scenario.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor > 0.0, "load factor must be positive");
        Self {
            arrivals: self
                .arrivals
                .iter()
                .map(|a| Arrival {
                    at_ns: (a.at_ns as f64 / factor) as u64,
                    tenant: a.tenant,
                })
                .collect(),
        }
    }

    /// The scheduled arrivals, in time order.
    pub fn arrivals(&self) -> &[Arrival] {
        &self.arrivals
    }

    /// Number of scheduled arrivals.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// The schedule's span: the last arrival's timestamp, ns.
    pub fn span_ns(&self) -> u64 {
        self.arrivals.last().map_or(0, |a| a.at_ns)
    }

    /// Offered load of the schedule, arrivals per second.
    pub fn offered_per_s(&self) -> f64 {
        let span = self.span_ns();
        if span == 0 {
            0.0
        } else {
            self.arrivals.len() as f64 * 1e9 / span as f64
        }
    }

    /// Serializes the schedule into the committed text format: a
    /// header line, then one `at_ns tenant` pair per line. Lines
    /// starting with `#` are comments.
    ///
    /// ```text
    /// sec-replay-trace v1
    /// # at_ns tenant
    /// 181004 0
    /// 513400 1
    /// ```
    pub fn to_text(&self) -> String {
        let mut out = String::from("sec-replay-trace v1\n# at_ns tenant\n");
        for a in &self.arrivals {
            out.push_str(&format!("{} {}\n", a.at_ns, a.tenant));
        }
        out
    }

    /// Parses the text format produced by [`ArrivalTrace::to_text`].
    /// Returns a descriptive error for a bad header or a malformed
    /// line (1-based line numbers).
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, h)) if h.trim() == "sec-replay-trace v1" => {}
            Some((_, h)) => return Err(format!("bad header {h:?} (want \"sec-replay-trace v1\")")),
            None => return Err("empty trace file".into()),
        }
        let mut arrivals = Vec::new();
        for (i, line) in lines {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let at_ns = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| format!("line {}: bad at_ns in {line:?}", i + 1))?;
            let tenant = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| format!("line {}: bad tenant in {line:?}", i + 1))?;
            if parts.next().is_some() {
                return Err(format!("line {}: trailing fields in {line:?}", i + 1));
            }
            arrivals.push(Arrival { at_ns, tenant });
        }
        Ok(Self::from_arrivals(arrivals))
    }
}

/// Configuration of the replayed service.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads draining the request queue.
    pub workers: usize,
    /// Keys per tenant (tenant `t` addresses `[t·keys, (t+1)·keys)`).
    pub keys_per_tenant: u64,
    /// Per-mille of requests that insert (the rest get).
    pub insert_permille: u32,
    /// The latency SLO, ns (charged from *scheduled arrival*).
    pub slo_ns: u64,
    /// SLO accounting window, ms of scheduled-arrival time.
    pub window_ms: u64,
    /// A window is in violation when more than this fraction of its
    /// arrivals finished over the SLO (0.01 = windowed p99 over SLO).
    pub violation_frac: f64,
    /// How many requests a worker takes from the queue per bulk
    /// dequeue (rides `dequeue_many`, so a drain costs one
    /// announcement, not `drain_batch`).
    pub drain_batch: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            keys_per_tenant: 1024,
            insert_permille: 100,
            slo_ns: 1_000_000, // 1 ms
            window_ms: 10,
            violation_frac: 0.01,
            drain_batch: 32,
        }
    }
}

/// What one open-loop replay measured.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Offered load of the schedule, arrivals per second.
    pub offered_per_s: f64,
    /// Requests completed (== the trace length; open loop never
    /// drops).
    pub completed: u64,
    /// Wall time from the epoch to the last completion, ms.
    pub wall_ms: f64,
    /// Achieved completion rate, requests per second.
    pub achieved_per_s: f64,
    /// Latency percentiles charged from scheduled arrival (so
    /// queueing-while-behind counts).
    pub latency: LatencyReport,
    /// Total SLO accounting windows with at least one arrival.
    pub windows: usize,
    /// Windows whose over-SLO share exceeded the violation fraction.
    pub violated_windows: usize,
    /// The worst single window's over-SLO share (0..=1).
    pub worst_window_frac: f64,
}

impl ReplayReport {
    /// Fraction of accounted windows in violation (0..=1).
    pub fn violated_frac(&self) -> f64 {
        if self.windows == 0 {
            0.0
        } else {
            self.violated_windows as f64 / self.windows as f64
        }
    }
}

/// A request in flight through the service queue.
struct Request {
    /// Scheduled arrival (ns from epoch) — the latency origin.
    at_ns: u64,
    /// The key this request touches.
    key: u64,
    /// Insert (true) or get (false).
    insert: bool,
}

/// Per-window completion tally (indexed by scheduled-arrival window).
#[derive(Debug, Clone, Copy, Default)]
struct WindowTally {
    arrivals: u64,
    over_slo: u64,
}

/// Replays `trace` against a [`SecQueue`]+[`SecMap`] service in open
/// loop and reports latency-vs-offered-load and SLO-violation windows.
///
/// One dispatcher thread walks the schedule, spinning/yielding until
/// each request's scheduled time and then enqueueing it — arrivals
/// never wait for the service, so when the workers fall behind the
/// queue grows and queueing delay lands in the measured latency
/// (coordinated omission is structurally impossible). `cfg.workers`
/// worker threads bulk-drain the queue (`dequeue_many`)
/// and execute each request against the map (`insert_permille`
/// inserts, the rest gets, keys uniform within the request's tenant
/// range).
pub fn replay_open_loop(trace: &ArrivalTrace, cfg: &ServiceConfig, seed: u64) -> ReplayReport {
    assert!(cfg.workers >= 1, "need at least one worker");
    assert!(cfg.drain_batch >= 1, "drain batch must be positive");
    let window_ns = cfg.window_ms.max(1) * 1_000_000;
    let n_windows = (trace.span_ns() / window_ns + 1) as usize;

    let queue: SecQueue<Request> = SecQueue::new(cfg.workers + 1);
    let map: SecMap<u64, u64> = SecMap::new(cfg.workers);
    let done = AtomicBool::new(false);
    // Dispatcher + workers start together; the epoch is taken by the
    // dispatcher right after the barrier drops.
    let barrier = Barrier::new(cfg.workers + 1);

    // Pre-draw each request's key and kind so the dispatcher's paced
    // loop does no RNG work between deadline and enqueue.
    let mut rng = SmallRng::seed_from_u64(seed);
    let requests: Vec<(u64, bool)> = trace
        .arrivals()
        .iter()
        .map(|a| {
            let key = a.tenant as u64 * cfg.keys_per_tenant
                + rng.gen_range(0..cfg.keys_per_tenant.max(1));
            let insert = rng.gen_range(0u32..1000) < cfg.insert_permille;
            (key, insert)
        })
        .collect();

    let (wall_ns, merged, tallies) = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..cfg.workers)
            .map(|_| {
                let queue = &queue;
                let map = &map;
                let done = &done;
                let barrier = &barrier;
                scope.spawn(move || {
                    let mut q = queue.register();
                    let mut m = map.register();
                    let mut hist = LatencyHistogram::new();
                    let mut tallies = vec![WindowTally::default(); n_windows];
                    let mut buf: Vec<Request> = Vec::with_capacity(cfg.drain_batch);
                    barrier.wait();
                    let epoch = Instant::now();
                    let mut idle = 0u32;
                    loop {
                        let got = q.dequeue_many(&mut buf, cfg.drain_batch);
                        if got == 0 {
                            if done.load(Ordering::Acquire) && q.dequeue_many(&mut buf, 1) == 0 {
                                break;
                            }
                            // Spin a while before yielding: at low load
                            // the next arrival is microseconds away, and
                            // a descheduled worker would charge the OS
                            // wake latency to the request.
                            idle += 1;
                            if idle < 512 {
                                core::hint::spin_loop();
                            } else {
                                std::thread::yield_now();
                            }
                            continue;
                        }
                        idle = 0;
                        for req in buf.drain(..) {
                            if req.insert {
                                m.insert(req.key, req.at_ns);
                            } else {
                                let _ = m.get(&req.key);
                            }
                            let now = epoch.elapsed().as_nanos() as u64;
                            let lat = now.saturating_sub(req.at_ns);
                            hist.record(lat);
                            let w = (req.at_ns / window_ns) as usize;
                            let t = &mut tallies[w.min(n_windows - 1)];
                            t.arrivals += 1;
                            if lat > cfg.slo_ns {
                                t.over_slo += 1;
                            }
                        }
                    }
                    (hist, tallies)
                })
            })
            .collect();

        // Dispatcher (this thread): pace the schedule.
        let mut d = queue.register();
        barrier.wait();
        let epoch = Instant::now();
        for (a, &(key, insert)) in trace.arrivals().iter().zip(&requests) {
            // Spin-then-yield until the scheduled time. If we are
            // already past it (the enqueue path itself fell behind),
            // fire immediately — lateness becomes queueing delay.
            loop {
                let now = epoch.elapsed().as_nanos() as u64;
                if now >= a.at_ns {
                    break;
                }
                if a.at_ns - now > 100_000 {
                    std::thread::yield_now();
                } else {
                    core::hint::spin_loop();
                }
            }
            d.enqueue(Request {
                at_ns: a.at_ns,
                key,
                insert,
            });
        }
        done.store(true, Ordering::Release);
        drop(d);

        let mut merged = LatencyHistogram::new();
        let mut tallies = vec![WindowTally::default(); n_windows];
        for w in workers {
            let (hist, t) = w.join().expect("worker panicked");
            merged.merge(&hist);
            for (acc, x) in tallies.iter_mut().zip(t) {
                acc.arrivals += x.arrivals;
                acc.over_slo += x.over_slo;
            }
        }
        (epoch.elapsed().as_nanos() as u64, merged, tallies)
    });

    let mut windows = 0usize;
    let mut violated = 0usize;
    let mut worst = 0.0f64;
    for t in &tallies {
        if t.arrivals == 0 {
            continue;
        }
        windows += 1;
        let frac = t.over_slo as f64 / t.arrivals as f64;
        if frac > cfg.violation_frac {
            violated += 1;
        }
        worst = worst.max(frac);
    }

    let completed = merged.count();
    ReplayReport {
        offered_per_s: trace.offered_per_s(),
        completed,
        wall_ms: wall_ns as f64 / 1e6,
        achieved_per_s: if wall_ns == 0 {
            0.0
        } else {
            completed as f64 * 1e9 / wall_ns as f64
        },
        latency: LatencyReport::from_histogram(&merged),
        windows,
        violated_windows: violated,
        worst_window_frac: worst,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic_and_sorted() {
        let a = ArrivalTrace::bursty(5_000.0, 50_000.0, 50, 10, 200, 7);
        let b = ArrivalTrace::bursty(5_000.0, 50_000.0, 50, 10, 200, 7);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(a.arrivals().windows(2).all(|w| w[0].at_ns <= w[1].at_ns));

        let d = ArrivalTrace::diurnal(1_000.0, 20_000.0, 100, 200, 9);
        assert_eq!(d, ArrivalTrace::diurnal(1_000.0, 20_000.0, 100, 200, 9));

        let m = ArrivalTrace::multi_tenant(&[10_000.0, 1_000.0, 1_000.0], 100, 3);
        assert!(m.arrivals().iter().any(|a| a.tenant == 2));
        assert!(m.arrivals().windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
    }

    #[test]
    fn trace_text_round_trips() {
        let t = ArrivalTrace::multi_tenant(&[8_000.0, 2_000.0], 50, 11);
        let text = t.to_text();
        assert_eq!(ArrivalTrace::parse(&text).unwrap(), t);
        assert!(ArrivalTrace::parse("nonsense\n1 2\n").is_err());
        assert!(ArrivalTrace::parse("sec-replay-trace v1\n1 2 3\n").is_err());
        assert!(ArrivalTrace::parse("sec-replay-trace v1\nx 0\n").is_err());
    }

    #[test]
    fn scaling_compresses_the_schedule() {
        let t = ArrivalTrace::steady(10_000.0, 100, 5);
        let fast = t.scaled(2.0);
        assert_eq!(t.len(), fast.len());
        assert!(fast.span_ns() <= t.span_ns() / 2 + 1);
        // Twice the offered load (up to integer truncation).
        assert!(fast.offered_per_s() > t.offered_per_s() * 1.9);
    }

    #[test]
    fn open_loop_replay_completes_every_request() {
        // Modest load so the test is quick and never overloads CI.
        let trace = ArrivalTrace::multi_tenant(&[20_000.0, 5_000.0], 80, 42);
        let cfg = ServiceConfig {
            workers: 2,
            slo_ns: 5_000_000,
            ..ServiceConfig::default()
        };
        let rep = replay_open_loop(&trace, &cfg, 1);
        assert_eq!(rep.completed, trace.len() as u64, "open loop never drops");
        assert!(rep.latency.samples == rep.completed);
        assert!(rep.windows > 0);
        assert!(rep.violated_windows <= rep.windows);
        assert!(rep.latency.p50 <= rep.latency.p99);
        // Percentiles are bucket upper edges (see LatencyHistogram):
        // bounded by max plus one sub-bucket width.
        let max = rep.latency.max;
        assert!(rep.latency.p99 <= max + max / 16 + 1);
        assert!((0.0..=1.0).contains(&rep.worst_window_frac));
    }
}
