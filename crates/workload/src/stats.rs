//! Summary statistics over repeated runs (the paper averages five),
//! plus the aggregation of SEC's elastic-resize counters across runs
//! (so the grow/shrink transitions PR 2 started collecting reach the
//! tables and CSV instead of being dropped per run) and of the
//! reclamation/recycling counters (retired/freed/cached and recycle
//! hit/miss/overflow — DESIGN.md §10) the same way.

use sec_core::{BatchReport, CollectorStats};

/// Accumulated batch-degree distribution over the repeated runs of one
/// measurement cell — the [`ResizeTotals`] pattern applied to the
/// [`DegreeDist`](sec_core::DegreeDist) every SEC [`BatchReport`] now
/// carries (sourced from the engine's per-batch degree histogram).
///
/// The `map_bench`/`queue_bench` binaries render the fold as the
/// `<series>_degree_{min,p50,p99,max}` extra CSV columns: min/max are
/// the extrema across runs, p50/p99 the mean of the per-run
/// percentiles (percentiles don't sum; averaging them over the
/// repeated runs of one cell is the standard cell-level estimate).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DegreeTotals {
    /// Smallest batch degree seen in any accumulated run.
    pub min: u64,
    /// Sum of the per-run median degrees (divide by `runs` for the
    /// mean; use [`p50_mean`](Self::p50_mean)).
    pub p50_sum: u64,
    /// Sum of the per-run 99th-percentile degrees.
    pub p99_sum: u64,
    /// Largest batch degree seen in any accumulated run.
    pub max: u64,
    /// Runs accumulated.
    pub runs: usize,
}

impl DegreeTotals {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one run's report in (a no-op for `None`, so non-SEC
    /// lineups can share the call site).
    pub fn add(&mut self, report: Option<&BatchReport>) {
        if let Some(r) = report {
            let d = r.degree;
            self.min = if self.runs == 0 {
                d.min
            } else {
                self.min.min(d.min)
            };
            self.p50_sum += d.p50;
            self.p99_sum += d.p99;
            self.max = self.max.max(d.max);
            self.runs += 1;
        }
    }

    /// Mean per-run median degree (0 when empty).
    pub fn p50_mean(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.p50_sum as f64 / self.runs as f64
        }
    }

    /// Mean per-run 99th-percentile degree (0 when empty).
    pub fn p99_mean(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.p99_sum as f64 / self.runs as f64
        }
    }
}

/// Accumulated elastic-sharding resize counters over the repeated runs
/// of one measurement cell.
///
/// [`run_algo`](crate::run_algo) returns a fresh [`BatchReport`] per
/// run; feed each into [`add`](Self::add) and the figure binaries
/// render the totals as the `<series>_grows` / `<series>_shrinks`
/// extra CSV columns (see [`Figure::add_extra`](crate::table::Figure::add_extra)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResizeTotals {
    /// Grow transitions summed over the accumulated runs.
    pub grows: u64,
    /// Shrink transitions summed over the accumulated runs.
    pub shrinks: u64,
    /// Runs accumulated.
    pub runs: usize,
}

impl ResizeTotals {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one run's report in (a no-op for `None`, so non-SEC
    /// lineups can share the call site).
    pub fn add(&mut self, report: Option<&BatchReport>) {
        if let Some(r) = report {
            self.grows += r.grows;
            self.shrinks += r.shrinks;
            self.runs += 1;
        }
    }

    /// Total transitions in either direction.
    pub fn resizes(&self) -> u64 {
        self.grows + self.shrinks
    }

    /// Mean grow transitions per accumulated run (0 when empty).
    pub fn grows_per_run(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.grows as f64 / self.runs as f64
        }
    }

    /// Mean shrink transitions per accumulated run (0 when empty).
    pub fn shrinks_per_run(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.shrinks as f64 / self.runs as f64
        }
    }
}

/// Accumulated park/wake counters over the repeated runs of one
/// measurement cell — the [`ResizeTotals`] pattern applied to the
/// wait-subsystem counters every SEC [`BatchReport`] now carries
/// (DESIGN.md §11).
///
/// The `oversub` bench renders the totals as the
/// `<series>_{parks,wakes,spurious}` extra CSV columns.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WaitTotals {
    /// Times a waiter parked, summed over the accumulated runs.
    pub parks: u64,
    /// Unparks issued by freezers/combiners, summed likewise.
    pub wakes: u64,
    /// Wakeups whose condition was still false, summed likewise.
    pub spurious: u64,
    /// Runs accumulated.
    pub runs: usize,
}

impl WaitTotals {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one run's report in (a no-op for `None`, so non-SEC
    /// lineups can share the call site).
    pub fn add(&mut self, report: Option<&BatchReport>) {
        if let Some(r) = report {
            self.parks += r.parks;
            self.wakes += r.wakes;
            self.spurious += r.spurious_wakes;
            self.runs += 1;
        }
    }

    /// Mean parks per accumulated run (0 when empty).
    pub fn parks_per_run(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.parks as f64 / self.runs as f64
        }
    }

    /// Spurious wakeups as a percentage of all parks (0 when no parks
    /// happened): the precision of the keyed wake filtering.
    pub fn spurious_pct(&self) -> f64 {
        if self.parks == 0 {
            0.0
        } else {
            100.0 * self.spurious as f64 / self.parks as f64
        }
    }
}

/// Accumulated reclamation/recycling counters over the repeated runs
/// of one measurement cell — the [`ResizeTotals`] pattern applied to
/// the collector's [`CollectorStats`].
///
/// [`run_algo`](crate::run_algo) returns a fresh snapshot per SEC run;
/// feed each into [`add`](Self::add) and the figure binaries render
/// the totals as `<series>_recycle_{hits,misses,overflows}` extra CSV
/// columns.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReclaimTotals {
    /// Objects retired, summed over the accumulated runs.
    pub retired: u64,
    /// Objects freed to the allocator, summed likewise.
    pub freed: u64,
    /// Objects whose memory entered a recycle free list, summed
    /// likewise.
    pub cached: u64,
    /// Allocations served from a free list.
    pub hits: u64,
    /// Allocations that fell through to the heap.
    pub misses: u64,
    /// Quiesced blocks that overflowed their thread cache.
    pub overflows: u64,
    /// Runs accumulated.
    pub runs: usize,
}

impl ReclaimTotals {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one run's collector snapshot in (a no-op for `None`, so
    /// non-SEC lineups can share the call site).
    pub fn add(&mut self, stats: Option<&CollectorStats>) {
        if let Some(s) = stats {
            self.retired += s.retired as u64;
            self.freed += s.freed as u64;
            self.cached += s.cached as u64;
            self.hits += s.recycle_hits;
            self.misses += s.recycle_misses;
            self.overflows += s.recycle_overflows;
            self.runs += 1;
        }
    }

    /// Recycle hit rate in percent over the accumulated runs (0 when
    /// no allocation was attempted).
    pub fn hit_pct(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            100.0 * self.hits as f64 / total as f64
        }
    }

    /// Objects still in limbo across the accumulated runs
    /// (`retired − freed − cached`); a leak shows up as a persistent
    /// positive value here after drains.
    pub fn pending(&self) -> u64 {
        self.retired
            .saturating_sub(self.freed)
            .saturating_sub(self.cached)
    }
}

/// Mean / standard deviation / extrema of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n ≤ 1).
    pub stddev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Sample count.
    pub n: usize,
}

impl Summary {
    /// Summarizes `samples`; returns an all-zero summary for an empty
    /// slice.
    pub fn of(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Self {
                mean: 0.0,
                stddev: 0.0,
                min: 0.0,
                max: 0.0,
                n: 0,
            };
        }
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        Self {
            mean,
            stddev: var.sqrt(),
            min: samples.iter().cloned().fold(f64::INFINITY, f64::min),
            max: samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
            n,
        }
    }

    /// Coefficient of variation in percent (the paper reports SEC's
    /// variance stayed below 5%).
    pub fn cv_pct(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            100.0 * self.stddev / self.mean
        }
    }

    /// Half-width of the 95% confidence interval for the mean
    /// (`t · s/√n`), 0 for n ≤ 1.
    ///
    /// Uses the two-sided Student-t critical value at the sample's
    /// degrees of freedom — with the paper's 5 runs (4 d.o.f.) the
    /// normal approximation would understate the interval by ~42%.
    pub fn ci95_half_width(&self) -> f64 {
        if self.n <= 1 {
            return 0.0;
        }
        Self::t_crit_95(self.n - 1) * self.stddev / (self.n as f64).sqrt()
    }

    /// The mean ± 95% CI as an `(lo, hi)` pair.
    pub fn ci95(&self) -> (f64, f64) {
        let h = self.ci95_half_width();
        (self.mean - h, self.mean + h)
    }

    /// Two-sided 97.5th-percentile Student-t critical value for `dof`
    /// degrees of freedom (table lookup; converges to z = 1.96).
    fn t_crit_95(dof: usize) -> f64 {
        const TABLE: [f64; 30] = [
            12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179,
            2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
            2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
        ];
        match dof {
            0 => f64::INFINITY,
            d if d <= TABLE.len() => TABLE[d - 1],
            d if d <= 40 => 2.021,
            d if d <= 60 => 2.000,
            d if d <= 120 => 1.980,
            _ => 1.960,
        }
    }

    /// `true` when this summary's 95% CI does not overlap `other`'s —
    /// the difference in means is statistically meaningful at that
    /// level (the standard to meet before claiming one algorithm
    /// "leads" another).
    pub fn significantly_differs_from(&self, other: &Summary) -> bool {
        let (a_lo, a_hi) = self.ci95();
        let (b_lo, b_hi) = other.ci95();
        a_hi < b_lo || b_hi < a_lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(grows: u64, shrinks: u64) -> BatchReport {
        BatchReport {
            batches: 1,
            ops: 2,
            eliminated: 0,
            combined: 2,
            cas_failures: 0,
            grows,
            shrinks,
            parks: 4,
            wakes: 3,
            spurious_wakes: 1,
            degree: sec_core::DegreeDist {
                min: 2,
                p50: 2,
                p99: 2,
                max: 2,
            },
        }
    }

    #[test]
    fn resize_totals_accumulate_across_runs() {
        let mut t = ResizeTotals::new();
        t.add(Some(&report(2, 1)));
        t.add(Some(&report(0, 3)));
        t.add(None); // non-SEC run: ignored
        assert_eq!(t.grows, 2);
        assert_eq!(t.shrinks, 4);
        assert_eq!(t.runs, 2);
        assert_eq!(t.resizes(), 6);
        assert!((t.grows_per_run() - 1.0).abs() < 1e-12);
        assert!((t.shrinks_per_run() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn wait_totals_accumulate_and_derive() {
        let mut t = WaitTotals::new();
        t.add(Some(&report(0, 0))); // 4 parks, 3 wakes, 1 spurious
        t.add(Some(&report(0, 0)));
        t.add(None); // non-SEC run: ignored
        assert_eq!(t.runs, 2);
        assert_eq!(t.parks, 8);
        assert_eq!(t.wakes, 6);
        assert_eq!(t.spurious, 2);
        assert!((t.parks_per_run() - 4.0).abs() < 1e-12);
        assert!((t.spurious_pct() - 25.0).abs() < 1e-12);
        assert_eq!(WaitTotals::new().spurious_pct(), 0.0);
        assert_eq!(WaitTotals::new().parks_per_run(), 0.0);
    }

    #[test]
    fn reclaim_totals_accumulate_and_derive() {
        let snap = |retired, freed, cached, hits, misses| CollectorStats {
            epoch: 1,
            retired,
            freed,
            cached,
            recycle_hits: hits,
            recycle_misses: misses,
            recycle_overflows: 1,
        };
        let mut t = ReclaimTotals::new();
        t.add(Some(&snap(10, 4, 6, 30, 10)));
        t.add(Some(&snap(5, 5, 0, 0, 0)));
        t.add(None); // non-SEC run: ignored
        assert_eq!(t.runs, 2);
        assert_eq!(t.retired, 15);
        assert_eq!(t.freed, 9);
        assert_eq!(t.cached, 6);
        assert_eq!(t.overflows, 2);
        assert_eq!(t.pending(), 0);
        assert!((t.hit_pct() - 75.0).abs() < 1e-12);
        assert_eq!(ReclaimTotals::new().hit_pct(), 0.0);
    }

    #[test]
    fn degree_totals_accumulate_and_derive() {
        let with_degree = |min, p50, p99, max| {
            let mut r = report(0, 0);
            r.degree = sec_core::DegreeDist { min, p50, p99, max };
            r
        };
        let mut t = DegreeTotals::new();
        t.add(Some(&with_degree(1, 3, 7, 9)));
        t.add(Some(&with_degree(2, 5, 9, 12)));
        t.add(None); // non-SEC run: ignored
        assert_eq!(t.runs, 2);
        assert_eq!(t.min, 1, "min of mins");
        assert_eq!(t.max, 12, "max of maxes");
        assert!((t.p50_mean() - 4.0).abs() < 1e-12);
        assert!((t.p99_mean() - 8.0).abs() < 1e-12);
        assert_eq!(DegreeTotals::new().p50_mean(), 0.0);
        assert_eq!(DegreeTotals::new().p99_mean(), 0.0);
    }

    #[test]
    fn empty_resize_totals_are_zero() {
        let t = ResizeTotals::new();
        assert_eq!(t.resizes(), 0);
        assert_eq!(t.grows_per_run(), 0.0);
        assert_eq!(t.shrinks_per_run(), 0.0);
    }

    #[test]
    fn empty_sample() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn single_sample_has_zero_stddev() {
        let s = Summary::of(&[4.0]);
        assert_eq!(s.mean, 4.0);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.min, 4.0);
        assert_eq!(s.max, 4.0);
    }

    #[test]
    fn known_values() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample stddev with n-1: sqrt(32/7).
        assert!((s.stddev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn cv_pct_is_relative() {
        let s = Summary::of(&[10.0, 10.0, 10.0]);
        assert_eq!(s.cv_pct(), 0.0);
        let s = Summary::of(&[9.0, 11.0]);
        assert!(s.cv_pct() > 0.0);
    }

    #[test]
    fn ci95_known_case() {
        // n = 5 (the paper's run count), s = 1, mean = 10:
        // half-width = 2.776 / √5 ≈ 1.2415.
        let s = Summary {
            mean: 10.0,
            stddev: 1.0,
            min: 9.0,
            max: 11.0,
            n: 5,
        };
        let h = s.ci95_half_width();
        assert!((h - 2.776 / 5f64.sqrt()).abs() < 1e-9, "got {h}");
        let (lo, hi) = s.ci95();
        assert!((lo - (10.0 - h)).abs() < 1e-12);
        assert!((hi - (10.0 + h)).abs() < 1e-12);
    }

    #[test]
    fn ci95_degenerate_samples() {
        assert_eq!(Summary::of(&[]).ci95_half_width(), 0.0);
        assert_eq!(Summary::of(&[3.0]).ci95_half_width(), 0.0);
        // Zero variance ⇒ zero width at any n.
        assert_eq!(Summary::of(&[2.0, 2.0, 2.0]).ci95_half_width(), 0.0);
    }

    #[test]
    fn t_table_converges_to_normal() {
        assert!(Summary::t_crit_95(1) > 12.0);
        assert!(Summary::t_crit_95(4) > Summary::t_crit_95(10));
        assert_eq!(Summary::t_crit_95(1000), 1.960);
    }

    #[test]
    fn significance_requires_separated_intervals() {
        let tight_low = Summary::of(&[1.0, 1.01, 0.99, 1.0, 1.0]);
        let tight_high = Summary::of(&[2.0, 2.01, 1.99, 2.0, 2.0]);
        assert!(tight_low.significantly_differs_from(&tight_high));
        assert!(tight_high.significantly_differs_from(&tight_low));

        let noisy_a = Summary::of(&[1.0, 3.0]);
        let noisy_b = Summary::of(&[2.0, 4.0]);
        assert!(
            !noisy_a.significantly_differs_from(&noisy_b),
            "two-sample CIs at n=2 are enormous; overlap expected"
        );
    }
}
