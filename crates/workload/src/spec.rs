//! Operation mixes (the paper's workload types) and the keyed-workload
//! generator for the map family (YCSB-style read/write mixes over
//! uniform or zipfian key draws).

use core::fmt;
use rand::Rng;

/// An operation mix in percent. `push + pop + peek` must equal 100.
///
/// The paper's workloads (§6 "Methodology"):
///
/// * Update-heavy — 50% push, 50% pop ("100% updates"),
/// * Mixed — 25% push, 25% pop, 50% peek ("50% updates"),
/// * Read-heavy — 5% push, 5% pop, 90% peek ("10% updates"),
/// * Push-only / Pop-only (Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mix {
    /// Percent of operations that push.
    pub push: u32,
    /// Percent of operations that pop.
    pub pop: u32,
    /// Percent of operations that peek.
    pub peek: u32,
}

impl Mix {
    /// 50% push / 50% pop — the paper's "100% updates".
    pub const UPDATE_100: Mix = Mix::new(50, 50, 0);
    /// 25% push / 25% pop / 50% peek — "50% updates".
    pub const UPDATE_50: Mix = Mix::new(25, 25, 50);
    /// 5% push / 5% pop / 90% peek — "10% updates".
    pub const UPDATE_10: Mix = Mix::new(5, 5, 90);
    /// 100% push (Figure 3, left).
    pub const PUSH_ONLY: Mix = Mix::new(100, 0, 0);
    /// 100% pop (Figure 3, right).
    pub const POP_ONLY: Mix = Mix::new(0, 100, 0);

    /// Creates a mix; panics (at compile time for const use) unless the
    /// percentages sum to 100.
    pub const fn new(push: u32, pop: u32, peek: u32) -> Self {
        assert!(push + pop + peek == 100, "mix must sum to 100%");
        Self { push, pop, peek }
    }

    /// Update percentage (push + pop), the paper's labeling measure.
    pub const fn update_pct(&self) -> u32 {
        self.push + self.pop
    }

    /// Chooses an operation from a uniform draw in `0..100`.
    #[inline]
    pub fn classify(&self, draw: u32) -> OpKind {
        debug_assert!(draw < 100);
        if draw < self.push {
            OpKind::Push
        } else if draw < self.push + self.pop {
            OpKind::Pop
        } else {
            OpKind::Peek
        }
    }

    /// The paper's label for this mix (used in figure/table output).
    pub fn label(&self) -> String {
        match *self {
            Mix::UPDATE_100 => "100% updates".into(),
            Mix::UPDATE_50 => "50% updates".into(),
            Mix::UPDATE_10 => "10% updates".into(),
            Mix::PUSH_ONLY => "push-only".into(),
            Mix::POP_ONLY => "pop-only".into(),
            Mix { push, pop, peek } => format!("{push}/{pop}/{peek} push/pop/peek"),
        }
    }
}

impl fmt::Display for Mix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// A single drawn operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Push a random value.
    Push,
    /// Pop.
    Pop,
    /// Peek.
    Peek,
}

/// A keyed-map operation mix in percent. `get + insert + remove` must
/// equal 100 — the map family's counterpart of [`Mix`], with YCSB's
/// read-heavy/write-heavy presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MapMix {
    /// Percent of operations that `get`.
    pub get: u32,
    /// Percent of operations that `insert`.
    pub insert: u32,
    /// Percent of operations that `remove`.
    pub remove: u32,
}

impl MapMix {
    /// 90% get / 5% insert / 5% remove — YCSB-B territory, the regime
    /// services run caches in.
    pub const READ_HEAVY: MapMix = MapMix::new(90, 5, 5);
    /// 10% get / 45% insert / 45% remove — the update-dominated regime
    /// where batching must carry the structure.
    pub const WRITE_HEAVY: MapMix = MapMix::new(10, 45, 45);
    /// 50% insert / 50% remove — no reads at all (the map twin of
    /// [`Mix::UPDATE_100`]).
    pub const UPDATE_ONLY: MapMix = MapMix::new(0, 50, 50);

    /// Creates a mix; panics (at compile time for const use) unless the
    /// percentages sum to 100.
    pub const fn new(get: u32, insert: u32, remove: u32) -> Self {
        assert!(get + insert + remove == 100, "map mix must sum to 100%");
        Self {
            get,
            insert,
            remove,
        }
    }

    /// Update percentage (insert + remove).
    pub const fn update_pct(&self) -> u32 {
        self.insert + self.remove
    }

    /// Chooses an operation from a uniform draw in `0..100`.
    #[inline]
    pub fn classify(&self, draw: u32) -> MapOpKind {
        debug_assert!(draw < 100);
        if draw < self.get {
            MapOpKind::Get
        } else if draw < self.get + self.insert {
            MapOpKind::Insert
        } else {
            MapOpKind::Remove
        }
    }

    /// The label used in figure/table output.
    pub fn label(&self) -> String {
        match *self {
            MapMix::READ_HEAVY => "read-heavy".into(),
            MapMix::WRITE_HEAVY => "write-heavy".into(),
            MapMix::UPDATE_ONLY => "update-only".into(),
            MapMix {
                get,
                insert,
                remove,
            } => format!("{get}/{insert}/{remove} get/insert/remove"),
        }
    }
}

impl fmt::Display for MapMix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// A single drawn map operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapOpKind {
    /// Look a key up.
    Get,
    /// Insert/overwrite a key.
    Insert,
    /// Remove a key.
    Remove,
}

/// How the keyed workload draws its keys.
///
/// The distinction this repo cares about: a **uniform** draw spreads
/// announcements evenly over the shards, while a **zipfian** draw
/// concentrates them on the hot keys' shards — the workload regime
/// that genuinely exercises the elastic monitor (big batches on hot
/// shards vote *grow*).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyDist {
    /// Keys uniform in `0..keys`.
    Uniform {
        /// Key-space size (≥ 1).
        keys: u64,
    },
    /// Keys zipfian over `0..keys` with skew `theta` (YCSB's default
    /// is `0.99`; higher is more skewed). Key 0 is the hottest.
    Zipfian {
        /// Key-space size (≥ 1).
        keys: u64,
        /// Skew exponent (`0.0` degenerates to uniform).
        theta: f64,
    },
}

impl KeyDist {
    /// Builds the per-run sampler (for zipfian: the `O(keys)`
    /// cumulative-weight table, built once and shared by reference
    /// across the worker threads).
    pub fn sampler(&self) -> KeySampler {
        match *self {
            KeyDist::Uniform { keys } => KeySampler {
                keys: keys.max(1),
                cum: None,
            },
            KeyDist::Zipfian { keys, theta } => {
                let keys = keys.max(1);
                let mut cum = Vec::with_capacity(keys as usize);
                let mut total = 0.0f64;
                for i in 0..keys {
                    total += 1.0 / ((i + 1) as f64).powf(theta);
                    cum.push(total);
                }
                for c in &mut cum {
                    *c /= total;
                }
                KeySampler {
                    keys,
                    cum: Some(cum.into_boxed_slice()),
                }
            }
        }
    }

    /// Key-space size.
    pub fn keys(&self) -> u64 {
        match *self {
            KeyDist::Uniform { keys } | KeyDist::Zipfian { keys, .. } => keys.max(1),
        }
    }

    /// The label used in figure/table output (`uniform(1024)`,
    /// `zipf(1024,0.99)`).
    pub fn label(&self) -> String {
        match *self {
            KeyDist::Uniform { keys } => format!("uniform({keys})"),
            KeyDist::Zipfian { keys, theta } => format!("zipf({keys},{theta})"),
        }
    }
}

impl fmt::Display for KeyDist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// A prepared key sampler (see [`KeyDist::sampler`]). Read-only after
/// construction, so worker threads share one by reference.
#[derive(Debug, Clone)]
pub struct KeySampler {
    keys: u64,
    /// Normalized cumulative zipf weights; `None` = uniform.
    cum: Option<Box<[f64]>>,
}

impl KeySampler {
    /// Draws one key.
    #[inline]
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        match &self.cum {
            None => rng.gen_range(0..self.keys),
            Some(cum) => {
                // A uniform draw in [0, 1) with 53 bits of precision,
                // inverted through the cumulative table.
                let u = rng.gen_range(0..(1u64 << 53)) as f64 / (1u64 << 53) as f64;
                cum.partition_point(|&c| c <= u) as u64
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn presets_sum_to_100() {
        for m in [
            Mix::UPDATE_100,
            Mix::UPDATE_50,
            Mix::UPDATE_10,
            Mix::PUSH_ONLY,
            Mix::POP_ONLY,
        ] {
            assert_eq!(m.push + m.pop + m.peek, 100);
        }
    }

    #[test]
    fn update_pct_matches_paper_labels() {
        assert_eq!(Mix::UPDATE_100.update_pct(), 100);
        assert_eq!(Mix::UPDATE_50.update_pct(), 50);
        assert_eq!(Mix::UPDATE_10.update_pct(), 10);
    }

    #[test]
    fn classify_covers_the_whole_range() {
        let m = Mix::UPDATE_50;
        let mut counts = [0u32; 3];
        for d in 0..100 {
            match m.classify(d) {
                OpKind::Push => counts[0] += 1,
                OpKind::Pop => counts[1] += 1,
                OpKind::Peek => counts[2] += 1,
            }
        }
        assert_eq!(counts, [25, 25, 50]);
    }

    #[test]
    fn classify_extremes() {
        assert_eq!(Mix::PUSH_ONLY.classify(0), OpKind::Push);
        assert_eq!(Mix::PUSH_ONLY.classify(99), OpKind::Push);
        assert_eq!(Mix::POP_ONLY.classify(0), OpKind::Pop);
        assert_eq!(Mix::POP_ONLY.classify(99), OpKind::Pop);
    }

    #[test]
    fn labels_match_paper_terms() {
        assert_eq!(Mix::UPDATE_100.label(), "100% updates");
        assert_eq!(Mix::new(10, 20, 70).label(), "10/20/70 push/pop/peek");
    }

    #[test]
    #[should_panic(expected = "sum to 100")]
    fn bad_mix_panics() {
        let _ = Mix::new(50, 50, 50);
    }

    #[test]
    fn map_presets_sum_to_100() {
        for m in [MapMix::READ_HEAVY, MapMix::WRITE_HEAVY, MapMix::UPDATE_ONLY] {
            assert_eq!(m.get + m.insert + m.remove, 100);
        }
        assert_eq!(MapMix::READ_HEAVY.update_pct(), 10);
        assert_eq!(MapMix::WRITE_HEAVY.update_pct(), 90);
    }

    #[test]
    fn map_classify_covers_the_whole_range() {
        let m = MapMix::READ_HEAVY;
        let mut counts = [0u32; 3];
        for d in 0..100 {
            match m.classify(d) {
                MapOpKind::Get => counts[0] += 1,
                MapOpKind::Insert => counts[1] += 1,
                MapOpKind::Remove => counts[2] += 1,
            }
        }
        assert_eq!(counts, [90, 5, 5]);
    }

    #[test]
    fn map_labels() {
        assert_eq!(MapMix::READ_HEAVY.label(), "read-heavy");
        assert_eq!(MapMix::WRITE_HEAVY.label(), "write-heavy");
        assert_eq!(
            MapMix::new(20, 30, 50).label(),
            "20/30/50 get/insert/remove"
        );
        assert_eq!(KeyDist::Uniform { keys: 64 }.label(), "uniform(64)");
        assert_eq!(
            KeyDist::Zipfian {
                keys: 64,
                theta: 0.99
            }
            .label(),
            "zipf(64,0.99)"
        );
    }

    #[test]
    #[should_panic(expected = "sum to 100")]
    fn bad_map_mix_panics() {
        let _ = MapMix::new(50, 50, 50);
    }

    #[test]
    fn uniform_sampler_stays_in_range_and_spreads() {
        let s = KeyDist::Uniform { keys: 16 }.sampler();
        let mut rng = SmallRng::seed_from_u64(7);
        let mut seen = [false; 16];
        for _ in 0..2_000 {
            let k = s.sample(&mut rng);
            assert!(k < 16);
            seen[k as usize] = true;
        }
        assert!(seen.iter().all(|&b| b), "all keys drawn: {seen:?}");
    }

    #[test]
    fn zipfian_sampler_skews_toward_low_keys() {
        let s = KeyDist::Zipfian {
            keys: 1024,
            theta: 0.99,
        }
        .sampler();
        let mut rng = SmallRng::seed_from_u64(42);
        const N: usize = 20_000;
        let mut head = 0usize; // draws landing in the 8 hottest keys
        for _ in 0..N {
            let k = s.sample(&mut rng);
            assert!(k < 1024);
            if k < 8 {
                head += 1;
            }
        }
        // With theta = 0.99 over 1024 keys the 8 hottest carry ~35% of
        // the mass; a uniform draw would put ~0.8% there.
        assert!(
            head > N / 5,
            "zipf mass not concentrated: {head}/{N} in the head"
        );
    }

    #[test]
    fn zipfian_theta_zero_degenerates_to_uniform() {
        let s = KeyDist::Zipfian {
            keys: 64,
            theta: 0.0,
        }
        .sampler();
        let mut rng = SmallRng::seed_from_u64(3);
        let mut counts = [0u32; 64];
        for _ in 0..64_000 {
            counts[s.sample(&mut rng) as usize] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(min * 2 > *max, "theta=0 should be near-uniform: {counts:?}");
    }

    #[test]
    fn samplers_are_deterministic_per_seed() {
        let d = KeyDist::Zipfian {
            keys: 128,
            theta: 0.99,
        };
        let (s1, s2) = (d.sampler(), d.sampler());
        let mut a = SmallRng::seed_from_u64(9);
        let mut b = SmallRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(s1.sample(&mut a), s2.sample(&mut b));
        }
    }
}
