//! Operation mixes (the paper's workload types).

use core::fmt;

/// An operation mix in percent. `push + pop + peek` must equal 100.
///
/// The paper's workloads (§6 "Methodology"):
///
/// * Update-heavy — 50% push, 50% pop ("100% updates"),
/// * Mixed — 25% push, 25% pop, 50% peek ("50% updates"),
/// * Read-heavy — 5% push, 5% pop, 90% peek ("10% updates"),
/// * Push-only / Pop-only (Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mix {
    /// Percent of operations that push.
    pub push: u32,
    /// Percent of operations that pop.
    pub pop: u32,
    /// Percent of operations that peek.
    pub peek: u32,
}

impl Mix {
    /// 50% push / 50% pop — the paper's "100% updates".
    pub const UPDATE_100: Mix = Mix::new(50, 50, 0);
    /// 25% push / 25% pop / 50% peek — "50% updates".
    pub const UPDATE_50: Mix = Mix::new(25, 25, 50);
    /// 5% push / 5% pop / 90% peek — "10% updates".
    pub const UPDATE_10: Mix = Mix::new(5, 5, 90);
    /// 100% push (Figure 3, left).
    pub const PUSH_ONLY: Mix = Mix::new(100, 0, 0);
    /// 100% pop (Figure 3, right).
    pub const POP_ONLY: Mix = Mix::new(0, 100, 0);

    /// Creates a mix; panics (at compile time for const use) unless the
    /// percentages sum to 100.
    pub const fn new(push: u32, pop: u32, peek: u32) -> Self {
        assert!(push + pop + peek == 100, "mix must sum to 100%");
        Self { push, pop, peek }
    }

    /// Update percentage (push + pop), the paper's labeling measure.
    pub const fn update_pct(&self) -> u32 {
        self.push + self.pop
    }

    /// Chooses an operation from a uniform draw in `0..100`.
    #[inline]
    pub fn classify(&self, draw: u32) -> OpKind {
        debug_assert!(draw < 100);
        if draw < self.push {
            OpKind::Push
        } else if draw < self.push + self.pop {
            OpKind::Pop
        } else {
            OpKind::Peek
        }
    }

    /// The paper's label for this mix (used in figure/table output).
    pub fn label(&self) -> String {
        match *self {
            Mix::UPDATE_100 => "100% updates".into(),
            Mix::UPDATE_50 => "50% updates".into(),
            Mix::UPDATE_10 => "10% updates".into(),
            Mix::PUSH_ONLY => "push-only".into(),
            Mix::POP_ONLY => "pop-only".into(),
            Mix { push, pop, peek } => format!("{push}/{pop}/{peek} push/pop/peek"),
        }
    }
}

impl fmt::Display for Mix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// A single drawn operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Push a random value.
    Push,
    /// Pop.
    Pop,
    /// Peek.
    Peek,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_sum_to_100() {
        for m in [
            Mix::UPDATE_100,
            Mix::UPDATE_50,
            Mix::UPDATE_10,
            Mix::PUSH_ONLY,
            Mix::POP_ONLY,
        ] {
            assert_eq!(m.push + m.pop + m.peek, 100);
        }
    }

    #[test]
    fn update_pct_matches_paper_labels() {
        assert_eq!(Mix::UPDATE_100.update_pct(), 100);
        assert_eq!(Mix::UPDATE_50.update_pct(), 50);
        assert_eq!(Mix::UPDATE_10.update_pct(), 10);
    }

    #[test]
    fn classify_covers_the_whole_range() {
        let m = Mix::UPDATE_50;
        let mut counts = [0u32; 3];
        for d in 0..100 {
            match m.classify(d) {
                OpKind::Push => counts[0] += 1,
                OpKind::Pop => counts[1] += 1,
                OpKind::Peek => counts[2] += 1,
            }
        }
        assert_eq!(counts, [25, 25, 50]);
    }

    #[test]
    fn classify_extremes() {
        assert_eq!(Mix::PUSH_ONLY.classify(0), OpKind::Push);
        assert_eq!(Mix::PUSH_ONLY.classify(99), OpKind::Push);
        assert_eq!(Mix::POP_ONLY.classify(0), OpKind::Pop);
        assert_eq!(Mix::POP_ONLY.classify(99), OpKind::Pop);
    }

    #[test]
    fn labels_match_paper_terms() {
        assert_eq!(Mix::UPDATE_100.label(), "100% updates");
        assert_eq!(Mix::new(10, 20, 70).label(), "10/20/70 push/pop/peek");
    }

    #[test]
    #[should_panic(expected = "sum to 100")]
    fn bad_mix_panics() {
        let _ = Mix::new(50, 50, 50);
    }
}
