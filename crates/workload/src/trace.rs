//! Deterministic workload traces: record once, replay everywhere.
//!
//! The paper compares six algorithms under "random" mixes; randomness
//! makes any two runs incomparable op-for-op. A [`Trace`] pins the
//! exact per-thread operation sequences (generated from a seed and a
//! [`Mix`], or built by hand), so
//!
//! * the *same* operations can be replayed against every algorithm —
//!   differences in outcome are then attributable to the algorithm, not
//!   to the draw;
//! * a failing stress run can be reproduced from its seed alone;
//! * tests can craft adversarial sequences (push floods, pop storms,
//!   ping-pong) that a uniform sampler would essentially never emit.
//!
//! Replay preserves each thread's program order; the interleaving
//! across threads remains up to the scheduler (that is the point —
//! a trace fixes the *workload*, not the *schedule*).

use crate::spec::{Mix, OpKind};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sec_core::{ConcurrentStack, StackHandle};
use std::sync::Barrier;
use std::time::{Duration, Instant};

/// One recorded operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOp {
    /// Push this value.
    Push(u64),
    /// Pop (result is whatever the replayed structure yields).
    Pop,
    /// Peek.
    Peek,
}

/// A deterministic multi-thread workload: one operation sequence per
/// thread.
///
/// # Examples
///
/// ```
/// use sec_core::SecStack;
/// use sec_workload::{replay, Mix, Trace};
///
/// // Same seed → same trace → op-for-op comparable runs.
/// let trace = Trace::generate(2, 500, Mix::UPDATE_100, 42);
/// assert_eq!(trace, Trace::generate(2, 500, Mix::UPDATE_100, 42));
///
/// let stack: SecStack<u64> = SecStack::new(2);
/// let result = replay(&stack, &trace);
/// assert_eq!(result.ops, 1000);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    lanes: Vec<Vec<TraceOp>>,
}

impl Trace {
    /// Generates a trace of `ops_per_thread` operations for each of
    /// `threads` lanes by sampling `mix` with the given `seed` — the
    /// deterministic twin of the throughput runner's sampling.
    pub fn generate(threads: usize, ops_per_thread: usize, mix: Mix, seed: u64) -> Self {
        let lanes = (0..threads)
            .map(|t| {
                let mut rng = SmallRng::seed_from_u64(seed ^ ((t as u64) << 17));
                (0..ops_per_thread)
                    .map(|_| match mix.classify(rng.gen_range(0..100)) {
                        OpKind::Push => TraceOp::Push(rng.gen_range(0..100_000)),
                        OpKind::Pop => TraceOp::Pop,
                        OpKind::Peek => TraceOp::Peek,
                    })
                    .collect()
            })
            .collect();
        Self { lanes }
    }

    /// Builds a trace from explicit per-thread sequences.
    pub fn from_lanes(lanes: Vec<Vec<TraceOp>>) -> Self {
        Self { lanes }
    }

    /// Number of threads (lanes).
    pub fn threads(&self) -> usize {
        self.lanes.len()
    }

    /// Total operations across all lanes.
    pub fn total_ops(&self) -> usize {
        self.lanes.iter().map(Vec::len).sum()
    }

    /// The operation sequence of lane `t`.
    pub fn lane(&self, t: usize) -> &[TraceOp] {
        &self.lanes[t]
    }

    /// Counts of (pushes, pops, peeks) over the whole trace.
    pub fn op_counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for op in self.lanes.iter().flatten() {
            match op {
                TraceOp::Push(_) => c.0 += 1,
                TraceOp::Pop => c.1 += 1,
                TraceOp::Peek => c.2 += 1,
            }
        }
        c
    }

    /// An adversarial "ping-pong" trace: every lane strictly alternates
    /// push/pop, maximizing elimination opportunities (the best case
    /// for SEC and EB, the worst for TSI's pop-side scan).
    pub fn ping_pong(threads: usize, pairs_per_thread: usize) -> Self {
        let lanes = (0..threads)
            .map(|t| {
                let mut lane = Vec::with_capacity(2 * pairs_per_thread);
                for i in 0..pairs_per_thread {
                    lane.push(TraceOp::Push((t * pairs_per_thread + i) as u64));
                    lane.push(TraceOp::Pop);
                }
                lane
            })
            .collect();
        Self { lanes }
    }

    /// A "flood-then-drain" trace: the first half of every lane pushes,
    /// the second half pops — no elimination is possible inside either
    /// phase, so combining carries the whole load (the paper's Figure 3
    /// regime as a fixed-work trace).
    pub fn flood_drain(threads: usize, per_phase: usize) -> Self {
        let lanes = (0..threads)
            .map(|t| {
                let mut lane = Vec::with_capacity(2 * per_phase);
                for i in 0..per_phase {
                    lane.push(TraceOp::Push((t * per_phase + i) as u64));
                }
                for _ in 0..per_phase {
                    lane.push(TraceOp::Pop);
                }
                lane
            })
            .collect();
        Self { lanes }
    }
}

/// Outcome of replaying a [`Trace`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplayResult {
    /// Wall-clock time from release to last thread done.
    pub elapsed: Duration,
    /// Operations executed (= `trace.total_ops()`).
    pub ops: u64,
    /// Pops that returned a value.
    pub pop_hits: u64,
    /// Pops that found the stack empty.
    pub pop_misses: u64,
    /// Sum of all pushed values minus sum of all popped values — with a
    /// full drain this is the value left in the structure (conservation
    /// diagnostic).
    pub balance: i128,
}

impl ReplayResult {
    /// Throughput in millions of operations per second.
    pub fn mops(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64().max(1e-12) / 1e6
    }
}

/// Replays `trace` against `stack`, one thread per lane, all released
/// simultaneously. Program order within each lane is preserved.
pub fn replay<S: ConcurrentStack<u64>>(stack: &S, trace: &Trace) -> ReplayResult {
    let threads = trace.threads();
    let barrier = Barrier::new(threads + 1);
    let (elapsed, lanes_out) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let stack = &stack;
                let barrier = &barrier;
                let lane = trace.lane(t);
                scope.spawn(move || {
                    let mut h = stack.register();
                    let mut hits = 0u64;
                    let mut misses = 0u64;
                    let mut balance = 0i128;
                    barrier.wait();
                    for op in lane {
                        match op {
                            TraceOp::Push(v) => {
                                h.push(*v);
                                balance += *v as i128;
                            }
                            TraceOp::Pop => match h.pop() {
                                Some(v) => {
                                    hits += 1;
                                    balance -= v as i128;
                                }
                                None => misses += 1,
                            },
                            TraceOp::Peek => {
                                let _ = h.peek();
                            }
                        }
                    }
                    (hits, misses, balance)
                })
            })
            .collect();
        // Clock starts *before* the release barrier: on an oversubscribed
        // host the workers can otherwise run to completion while this
        // thread is descheduled between the barrier and the clock read,
        // yielding absurd throughput. The measured span thus includes
        // one barrier release — negligible against the workers' work.
        let start = Instant::now();
        barrier.wait();
        let outs: Vec<_> = handles
            .into_iter()
            .map(|h| h.join().expect("replay worker panicked"))
            .collect();
        (start.elapsed(), outs)
    });
    let mut result = ReplayResult {
        elapsed,
        ops: trace.total_ops() as u64,
        pop_hits: 0,
        pop_misses: 0,
        balance: 0,
    };
    for (hits, misses, balance) in lanes_out {
        result.pop_hits += hits;
        result.pop_misses += misses;
        result.balance += balance;
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use sec_core::SecStack;

    #[test]
    fn generation_is_deterministic() {
        let a = Trace::generate(4, 100, Mix::UPDATE_50, 42);
        let b = Trace::generate(4, 100, Mix::UPDATE_50, 42);
        assert_eq!(a, b);
        let c = Trace::generate(4, 100, Mix::UPDATE_50, 43);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn lanes_have_requested_shape() {
        let t = Trace::generate(3, 50, Mix::UPDATE_100, 7);
        assert_eq!(t.threads(), 3);
        assert_eq!(t.total_ops(), 150);
        assert_eq!(t.lane(2).len(), 50);
    }

    #[test]
    fn mix_shares_are_respected_roughly() {
        let t = Trace::generate(2, 5_000, Mix::UPDATE_10, 11);
        let (push, pop, peek) = t.op_counts();
        let total = (push + pop + peek) as f64;
        assert!((push as f64 / total - 0.05).abs() < 0.02);
        assert!((pop as f64 / total - 0.05).abs() < 0.02);
        assert!((peek as f64 / total - 0.90).abs() < 0.03);
    }

    #[test]
    fn ping_pong_alternates() {
        let t = Trace::ping_pong(2, 3);
        assert_eq!(t.lane(0).len(), 6);
        assert!(matches!(t.lane(0)[0], TraceOp::Push(_)));
        assert_eq!(t.lane(0)[1], TraceOp::Pop);
        let (push, pop, peek) = t.op_counts();
        assert_eq!((push, pop, peek), (6, 6, 0));
    }

    #[test]
    fn flood_drain_balances_out() {
        let t = Trace::flood_drain(2, 8);
        let (push, pop, _) = t.op_counts();
        assert_eq!(push, pop);
    }

    #[test]
    fn replay_conserves_values_on_full_drain() {
        // flood_drain pushes everything then pops everything per lane;
        // across lanes the pops may interleave, but every pushed value
        // is popped by someone: balance must be zero, misses zero.
        let trace = Trace::flood_drain(3, 40);
        let stack: SecStack<u64> = SecStack::new(3);
        let r = replay(&stack, &trace);
        assert_eq!(r.ops, trace.total_ops() as u64);
        assert_eq!(r.pop_misses, 0, "drain phase can't under-run its own lane");
        assert_eq!(r.pop_hits, 120);
        assert_eq!(r.balance, 0, "all pushed value must be popped");
    }

    #[test]
    fn replay_reports_misses_on_empty_pops() {
        let trace = Trace::from_lanes(vec![vec![TraceOp::Pop, TraceOp::Pop]]);
        let stack: SecStack<u64> = SecStack::new(1);
        let r = replay(&stack, &trace);
        assert_eq!(r.pop_misses, 2);
        assert_eq!(r.pop_hits, 0);
    }

    #[test]
    fn same_trace_runs_on_all_algorithms() {
        use sec_baselines::{CcStack, EbStack, FcStack, TreiberStack, TsiStack};
        let trace = Trace::generate(2, 200, Mix::UPDATE_100, 99);
        let total = trace.total_ops() as u64;
        let (push, _, _) = trace.op_counts();
        let push_count = push as u64;
        fn check<S: ConcurrentStack<u64>>(s: S, trace: &Trace, total: u64, pushes: u64) {
            let r = replay(&s, trace);
            assert_eq!(r.ops, total, "{}", s.name());
            // No peeks in UPDATE_100: every non-push op is a pop.
            assert_eq!(r.pop_hits + r.pop_misses + pushes, total, "{}", s.name());
        }
        check(SecStack::<u64>::new(2), &trace, total, push_count);
        check(TreiberStack::<u64>::new(2), &trace, total, push_count);
        check(EbStack::<u64>::new(2), &trace, total, push_count);
        check(FcStack::<u64>::new(2), &trace, total, push_count);
        check(CcStack::<u64>::new(2), &trace, total, push_count);
        check(TsiStack::<u64>::new(2), &trace, total, push_count);
    }
}
