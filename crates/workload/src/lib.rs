//! # `sec-workload` — workload generation and throughput measurement
//!
//! The evaluation substrate behind every figure and table of the paper
//! (§6 "Methodology"):
//!
//! * [`Mix`] — operation mixes (the paper's read-heavy / mixed /
//!   update-heavy / push-only / pop-only workloads),
//! * [`RunConfig`] / [`run_throughput`] — the measurement loop: prefill
//!   the stack, release `n` threads behind a barrier, let them draw
//!   operations from the mix for a fixed duration, report aggregate
//!   throughput (Mops/s),
//! * [`run_queue_throughput`] — the same loop for the FIFO-queue family
//!   ([`Algo::SecQueue`], [`Algo::MsQ`], [`Algo::LckQ`]),
//! * [`run_map_throughput`] / [`MapMix`] / [`KeyDist`] — the keyed
//!   workload for the map family ([`Algo::SecMap`], [`Algo::LckMap`]):
//!   YCSB-style get/insert/remove shares over uniform or zipfian key
//!   draws,
//! * [`run_counter_throughput`] — the counter family
//!   ([`Algo::SecCounter`]),
//! * [`Algo`] / [`run_algo`] — dispatch over the stack, queue, counter
//!   and map implementations, so the figure binaries can sweep
//!   algorithms,
//! * [`stats`] — mean/σ across repeated runs, plus the elastic-resize
//!   counter aggregation ([`stats::ResizeTotals`]),
//! * [`table`] — the paper-style table and CSV output (plotted series
//!   plus unplotted counter columns),
//! * [`trace`] — deterministic record/replay workloads (fixed op
//!   sequences replayed against every algorithm for op-for-op
//!   comparability and reproducible stress failures),
//! * [`openloop`] — open-loop traffic replay: timestamped arrival
//!   traces (steady / bursty / diurnal / multi-tenant, plus a
//!   committed text format) replayed against a
//!   `SecQueue`+`SecMap` service with latency charged from scheduled
//!   arrival, so overload shows up instead of being coordinated away.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

mod algo;
pub mod latency;
pub mod openloop;
mod runner;
mod spec;
pub mod stats;
pub mod table;
pub mod trace;

pub use algo::{
    run_algo, Algo, ALL_COMPETITORS, EXTENDED_LINEUP, MAP_LINEUP, QUEUE_LINEUP, SEC_FAMILIES,
};
pub use latency::{
    measure_counter_latency, measure_latency, measure_map_latency, measure_queue_latency,
    LatencyHistogram, LatencyReport,
};
pub use openloop::{replay_open_loop, Arrival, ArrivalTrace, ReplayReport, ServiceConfig};
pub use runner::{
    run_counter_throughput, run_map_throughput, run_queue_throughput, run_throughput, DurableSetup,
    RunConfig, RunResult,
};
pub use spec::{KeyDist, KeySampler, MapMix, MapOpKind, Mix, OpKind};
pub use trace::{replay, ReplayResult, Trace, TraceOp};
