//! Criterion: adversarial fixed-work traces across all algorithms.
//!
//! The figure benches sample operations randomly; these benches replay
//! the two structured traces from `sec_workload::trace` that bound
//! SEC's mechanism space:
//!
//! * `ping_pong` — strict push/pop alternation per thread; inside any
//!   frozen batch pushes and pops are near-balanced, so elimination
//!   does nearly all the work (SEC's best case, also EB's);
//! * `flood_drain` — each thread pushes its whole quota then pops it
//!   back; batches are one-sided, elimination never fires and the
//!   combiners carry everything (Figure 3's regime as fixed work).
//!
//! Comparing one algorithm's two rows shows how much that algorithm
//! depends on elimination; comparing algorithms within a row is the
//! usual shoot-out, with the draw held fixed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sec_baselines::{CcStack, EbStack, FcStack, TreiberStack, TsiStack};
use sec_core::SecStack;
use sec_workload::{replay, Trace};
use std::time::Duration;

const THREADS: usize = 4;
const OPS_PER_THREAD: usize = 2_000;

fn configure(g: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
}

fn bench_trace(c: &mut Criterion, group: &str, trace: &Trace) {
    let mut g = c.benchmark_group(group);
    configure(&mut g);
    g.throughput(criterion::Throughput::Elements(trace.total_ops() as u64));

    g.bench_with_input(BenchmarkId::from_parameter("SEC"), trace, |b, t| {
        b.iter(|| replay(&SecStack::<u64>::new(THREADS), t))
    });
    g.bench_with_input(BenchmarkId::from_parameter("TRB"), trace, |b, t| {
        b.iter(|| replay(&TreiberStack::<u64>::new(THREADS), t))
    });
    g.bench_with_input(BenchmarkId::from_parameter("EB"), trace, |b, t| {
        b.iter(|| replay(&EbStack::<u64>::new(THREADS), t))
    });
    g.bench_with_input(BenchmarkId::from_parameter("FC"), trace, |b, t| {
        b.iter(|| replay(&FcStack::<u64>::new(THREADS), t))
    });
    g.bench_with_input(BenchmarkId::from_parameter("CC"), trace, |b, t| {
        b.iter(|| replay(&CcStack::<u64>::new(THREADS), t))
    });
    g.bench_with_input(BenchmarkId::from_parameter("TSI"), trace, |b, t| {
        b.iter(|| replay(&TsiStack::<u64>::new(THREADS), t))
    });
    g.finish();
}

fn ping_pong(c: &mut Criterion) {
    let trace = Trace::ping_pong(THREADS, OPS_PER_THREAD / 2);
    bench_trace(c, "adversarial_ping_pong", &trace);
}

fn flood_drain(c: &mut Criterion) {
    let trace = Trace::flood_drain(THREADS, OPS_PER_THREAD / 2);
    bench_trace(c, "adversarial_flood_drain", &trace);
}

criterion_group!(benches, ping_pong, flood_drain);
criterion_main!(benches);
