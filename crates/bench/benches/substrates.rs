//! Microbenchmarks of the substrates the stacks are built on: EBR
//! pin/unpin vs hazard-pointer protect, retire throughput of both
//! reclamation schemes, the funnel vs hardware fetch&add, lock
//! acquisition across all four disciplines, and the TSC clock — the
//! per-operation costs that explain the figure numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use sec_reclaim::{Collector, HpDomain};
use sec_sync::funnel::AggregatingFunnel;
use sec_sync::{ClhLock, McsLock, TscClock, TtasLock};
use std::hint::black_box;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

fn configure(g: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(150))
        .measurement_time(Duration::from_millis(600));
}

fn ebr(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate_ebr");
    configure(&mut g);

    g.bench_function("pin_unpin", |b| {
        let collector = Collector::new(1);
        let handle = collector.register().unwrap();
        b.iter(|| {
            let guard = handle.pin();
            black_box(&guard);
        });
    });

    g.bench_function("retire_u64", |b| {
        let collector = Collector::new(1);
        let handle = collector.register().unwrap();
        b.iter(|| {
            let guard = handle.pin();
            unsafe { guard.retire(Box::into_raw(Box::new(black_box(7u64)))) };
        });
    });
    g.finish();
}

fn hp(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate_hp");
    configure(&mut g);

    // The HP read-side cost EBR's pin is compared against: publish the
    // pointer, fence, validate (uncontended source).
    g.bench_function("protect_clear", |b| {
        let domain = HpDomain::new(1, 1);
        let handle = domain.register().unwrap();
        let node = Box::into_raw(Box::new(7u64));
        let src = AtomicPtr::new(node);
        b.iter(|| {
            let p = handle.protect(0, &src);
            black_box(p);
            handle.clear(0);
        });
        drop(unsafe { Box::from_raw(node) });
    });

    g.bench_function("retire_u64", |b| {
        let domain = HpDomain::new(1, 1);
        let handle = domain.register().unwrap();
        b.iter(|| {
            unsafe { handle.retire(Box::into_raw(Box::new(black_box(7u64)))) };
        });
    });
    g.finish();
}

fn locks(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate_locks");
    configure(&mut g);

    // Uncontended acquire/release: the baseline cost each combining
    // stack pays per combiner election (contended behaviour is the
    // lock_ablation binary's job — Criterion is single-threaded here).
    g.bench_function("mutex", |b| {
        let l = Mutex::new(0u64);
        b.iter(|| {
            *l.lock().unwrap() += 1;
        });
    });
    g.bench_function("ttas", |b| {
        let l = TtasLock::new(0u64);
        b.iter(|| {
            *l.lock() += 1;
        });
    });
    g.bench_function("mcs", |b| {
        let l = McsLock::new(0u64);
        b.iter(|| {
            *l.lock() += 1;
        });
    });
    g.bench_function("clh", |b| {
        let l = ClhLock::new(0u64);
        b.iter(|| {
            *l.lock() += 1;
        });
    });
    g.finish();
}

fn faa(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate_faa");
    configure(&mut g);

    g.bench_function("hw_fetch_add", |b| {
        let counter = AtomicU64::new(0);
        b.iter(|| black_box(counter.fetch_add(1, Ordering::AcqRel)));
    });

    g.bench_function("funnel_1shard", |b| {
        let funnel = AggregatingFunnel::new(1, 0);
        b.iter(|| black_box(funnel.fetch_add_one(0)));
    });

    g.bench_function("funnel_2shard", |b| {
        let funnel = AggregatingFunnel::new(2, 0);
        b.iter(|| black_box(funnel.fetch_add_one(0)));
    });
    g.finish();
}

fn clock(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate_clock");
    configure(&mut g);

    g.bench_function("tsc_now", |b| {
        let clock = TscClock::new();
        b.iter(|| black_box(clock.now()));
    });

    g.bench_function("tsc_interval_d32", |b| {
        let clock = TscClock::new();
        b.iter(|| black_box(clock.interval(32)));
    });
    g.finish();
}

criterion_group!(benches, ebr, hp, faa, locks, clock);
criterion_main!(benches);
