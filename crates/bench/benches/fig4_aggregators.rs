//! Criterion companion to Figure 4: SEC's aggregator-count ablation
//! (K = 1..=5) under the update-heavy mix and push-only.

use criterion::{criterion_group, criterion_main, Criterion};
use sec_bench::timed_algo;
use sec_workload::{Algo, Mix};
use std::time::Duration;

const OPS_PER_THREAD: u64 = 2_000;

fn bench(c: &mut Criterion, mix: Mix, group: &str, prefill: usize) {
    let threads = sec_sync::topology::hardware_threads().clamp(2, 8);
    let mut g = c.benchmark_group(group);
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    for k in 1..=5usize {
        g.bench_function(format!("SEC_Agg{k}"), |b| {
            b.iter_custom(|iters| {
                (0..iters)
                    .map(|_| {
                        timed_algo(
                            Algo::Sec { aggregators: k },
                            threads,
                            OPS_PER_THREAD,
                            mix,
                            prefill,
                        )
                    })
                    .sum()
            })
        });
    }
    g.finish();
}

fn fig4(c: &mut Criterion) {
    bench(c, Mix::UPDATE_100, "fig4_upd100", 1_000);
    bench(c, Mix::PUSH_ONLY, "fig4_push_only", 0);
}

criterion_group!(benches, fig4);
criterion_main!(benches);
