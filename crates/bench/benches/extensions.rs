//! Benchmarks for the extension structures (DESIGN.md §7): the sharded
//! elimination pool and the per-end elimination/combining deque,
//! against their naive counterparts (a single SEC stack; a plain
//! lock-protected `VecDeque`).

use criterion::{criterion_group, criterion_main, Criterion};
use sec_core::deque::SecDeque;
use sec_core::pool::SecPool;
use sec_core::{SecConfig, SecStack};
use sec_sync::TtasLock;
use std::collections::VecDeque;
use std::sync::Barrier;
use std::time::{Duration, Instant};

const OPS_PER_THREAD: u64 = 2_000;

fn threads() -> usize {
    sec_sync::topology::hardware_threads().clamp(2, 8)
}

/// Fixed-work put/get pairs against the pool.
fn timed_pool(shards: usize, n_threads: usize) -> Duration {
    let pool: SecPool<u64> = SecPool::new(shards, n_threads + 1);
    let barrier = Barrier::new(n_threads + 1);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_threads)
            .map(|_| {
                let pool = &pool;
                let barrier = &barrier;
                scope.spawn(move || {
                    let mut h = pool.register();
                    barrier.wait();
                    for i in 0..OPS_PER_THREAD {
                        h.put(i);
                        let _ = h.get();
                    }
                })
            })
            .collect();
        barrier.wait();
        let start = Instant::now();
        for h in handles {
            h.join().unwrap();
        }
        start.elapsed()
    })
}

/// Fixed-work push/pop pairs against a single stack (pool baseline).
fn timed_stack(n_threads: usize) -> Duration {
    let stack: SecStack<u64> = SecStack::with_config(SecConfig::new(2, n_threads + 1));
    let barrier = Barrier::new(n_threads + 1);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_threads)
            .map(|_| {
                let stack = &stack;
                let barrier = &barrier;
                scope.spawn(move || {
                    let mut h = stack.register();
                    barrier.wait();
                    for i in 0..OPS_PER_THREAD {
                        h.push(i);
                        let _ = h.pop();
                    }
                })
            })
            .collect();
        barrier.wait();
        let start = Instant::now();
        for h in handles {
            h.join().unwrap();
        }
        start.elapsed()
    })
}

/// Fixed-work mixed-end ops against the SEC deque.
fn timed_sec_deque(n_threads: usize) -> Duration {
    let deque: SecDeque<u64> = SecDeque::new(n_threads + 1);
    let barrier = Barrier::new(n_threads + 1);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_threads)
            .map(|t| {
                let deque = &deque;
                let barrier = &barrier;
                scope.spawn(move || {
                    let mut h = deque.register();
                    barrier.wait();
                    for i in 0..OPS_PER_THREAD {
                        match (t as u64 + i) % 4 {
                            0 => h.push_front(i),
                            1 => h.push_back(i),
                            2 => {
                                let _ = h.pop_front();
                            }
                            _ => {
                                let _ = h.pop_back();
                            }
                        }
                    }
                })
            })
            .collect();
        barrier.wait();
        let start = Instant::now();
        for h in handles {
            h.join().unwrap();
        }
        start.elapsed()
    })
}

/// The deque baseline: every op takes the lock directly.
fn timed_locked_deque(n_threads: usize) -> Duration {
    let deque: TtasLock<VecDeque<u64>> = TtasLock::new(VecDeque::new());
    let barrier = Barrier::new(n_threads + 1);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_threads)
            .map(|t| {
                let deque = &deque;
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    for i in 0..OPS_PER_THREAD {
                        let mut d = deque.lock();
                        match (t as u64 + i) % 4 {
                            0 => d.push_front(i),
                            1 => d.push_back(i),
                            2 => {
                                let _ = d.pop_front();
                            }
                            _ => {
                                let _ = d.pop_back();
                            }
                        }
                    }
                })
            })
            .collect();
        barrier.wait();
        let start = Instant::now();
        for h in handles {
            h.join().unwrap();
        }
        start.elapsed()
    })
}

fn pool_bench(c: &mut Criterion) {
    let n = threads();
    let mut g = c.benchmark_group("ext_pool");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    g.bench_function("sec_stack_baseline", |b| {
        b.iter_custom(|iters| (0..iters).map(|_| timed_stack(n)).sum())
    });
    for shards in [1usize, 2, 4] {
        g.bench_function(format!("pool_x{shards}"), |b| {
            b.iter_custom(|iters| (0..iters).map(|_| timed_pool(shards, n)).sum())
        });
    }
    g.finish();
}

fn deque_bench(c: &mut Criterion) {
    let n = threads();
    let mut g = c.benchmark_group("ext_deque");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    g.bench_function("locked_vecdeque", |b| {
        b.iter_custom(|iters| (0..iters).map(|_| timed_locked_deque(n)).sum())
    });
    g.bench_function("sec_deque", |b| {
        b.iter_custom(|iters| (0..iters).map(|_| timed_sec_deque(n)).sum())
    });
    g.finish();
}

criterion_group!(benches, pool_bench, deque_bench);
criterion_main!(benches);
