//! Criterion companion to Figure 3: push-only and pop-only fixed work,
//! exposing TSI's push/pop asymmetry and the combiners' behaviour with
//! no elimination available.

use criterion::{criterion_group, criterion_main, Criterion};
use sec_bench::timed_algo;
use sec_workload::{Mix, ALL_COMPETITORS};
use std::time::Duration;

const OPS_PER_THREAD: u64 = 2_000;

fn bench(c: &mut Criterion, mix: Mix, group: &str, prefill: usize) {
    let threads = sec_sync::topology::hardware_threads().clamp(2, 8);
    let mut g = c.benchmark_group(group);
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    for algo in ALL_COMPETITORS {
        g.bench_function(algo.label(), |b| {
            b.iter_custom(|iters| {
                (0..iters)
                    .map(|_| timed_algo(algo, threads, OPS_PER_THREAD, mix, prefill))
                    .sum()
            })
        });
    }
    g.finish();
}

fn fig3(c: &mut Criterion) {
    bench(c, Mix::PUSH_ONLY, "fig3_push_only", 0);
    // Pop-only: prefill at least threads*ops so pops measure removal.
    let threads = sec_sync::topology::hardware_threads().clamp(2, 8);
    bench(
        c,
        Mix::POP_ONLY,
        "fig3_pop_only",
        (threads as u64 * OPS_PER_THREAD) as usize,
    );
}

criterion_group!(benches, fig3);
criterion_main!(benches);
