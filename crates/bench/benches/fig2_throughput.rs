//! Criterion companion to Figure 2: fixed-work completion time for all
//! six algorithms under the three update mixes at a contended thread
//! count. Lower is better; 1/time tracks the figure's Mops/s.

use criterion::{criterion_group, criterion_main, Criterion};
use sec_bench::timed_algo;
use sec_workload::{Mix, ALL_COMPETITORS};
use std::time::Duration;

const OPS_PER_THREAD: u64 = 2_000;
const PREFILL: usize = 1_000;

fn bench_mix(c: &mut Criterion, mix: Mix, group: &str) {
    let threads = sec_sync::topology::hardware_threads().clamp(2, 8);
    let mut g = c.benchmark_group(group);
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    for algo in ALL_COMPETITORS {
        g.bench_function(algo.label(), |b| {
            b.iter_custom(|iters| {
                (0..iters)
                    .map(|_| timed_algo(algo, threads, OPS_PER_THREAD, mix, PREFILL))
                    .sum()
            })
        });
    }
    g.finish();
}

fn fig2(c: &mut Criterion) {
    bench_mix(c, Mix::UPDATE_100, "fig2_upd100");
    bench_mix(c, Mix::UPDATE_50, "fig2_upd50");
    bench_mix(c, Mix::UPDATE_10, "fig2_upd10");
}

criterion_group!(benches, fig2);
criterion_main!(benches);
