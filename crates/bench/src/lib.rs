//! # `sec-bench` — the paper's evaluation, regenerated
//!
//! Two kinds of benchmarks live here:
//!
//! * **Figure/table binaries** (`src/bin/`): each regenerates one
//!   figure or table of the paper as text tables + ASCII plots + CSV —
//!   `fig2` (throughput vs threads × 3 mixes × 6 algorithms),
//!   `fig3` (push-only / pop-only), `fig4` (aggregator ablation),
//!   `table1` (batching/elimination/combining degrees, with the
//!   binomial-model companion rows), the extension ablations
//!   `faa_ablation` (aggregating funnel vs hardware F&A vs lock),
//!   `freezer_backoff` (the §3.1 backoff tunable), `recl_ablation`
//!   (EBR vs hazard pointers vs leak floor), `lock_ablation`
//!   (Mutex/TTAS/MCS/CLH), `shard_policy` (Block vs RoundRobin), and
//!   `latency` (per-op percentiles), plus the artifact checks
//!   `validate` (seconds-scale PASS/FAIL) and `soak` (sustained-load
//!   conservation). Run e.g.:
//!
//!   ```text
//!   cargo run -p sec-bench --release --bin fig2 -- --duration-ms 5000 --runs 5
//!   ```
//!
//! * **Criterion benches** (`benches/`): statistically disciplined
//!   latency/throughput microbenchmarks backing the same experiments at
//!   fixed thread counts (`cargo bench --workspace`).
//!
//! This module provides the shared command-line parsing and the
//! fixed-work contended-run helper the Criterion benches use.

#![warn(missing_docs)]

use sec_baselines::{
    CcStack, EbStack, FcStack, LockedHashMap, LockedQueue, LockedStack, MsQueue, TreiberHpStack,
    TreiberStack, TsiStack,
};
use sec_core::counter::SecCounter;
use sec_core::{
    ConcurrentMap, ConcurrentQueue, ConcurrentStack, MapHandle, QueueHandle, SecConfig, SecMap,
    SecQueue, SecStack, StackHandle,
};
use sec_workload::{Algo, KeyDist, Mix};
use std::sync::Barrier;
use std::time::{Duration, Instant};

/// Command-line options shared by every figure binary.
///
/// Defaults are laptop-scale; the paper's settings are
/// `--duration-ms 5000 --runs 5`.
#[derive(Debug, Clone)]
pub struct BenchOpts {
    /// Measurement duration per (algorithm, thread-count) cell.
    pub duration: Duration,
    /// Repetitions averaged per cell (paper: 5).
    pub runs: usize,
    /// Cap on the thread sweep.
    pub max_threads: usize,
    /// Explicit sweep points (overrides the host-derived sweep). Lets
    /// the binaries reproduce the paper's exact x-axes, e.g.
    /// `--threads 24,48,72,96,120,144,168,192,216,240` for the
    /// IceLake/Sapphire figures.
    pub threads_list: Option<Vec<usize>>,
    /// Prefill size (paper: 1000).
    pub prefill: usize,
    /// Directory for CSV output (`results/` by default).
    pub csv_dir: std::path::PathBuf,
}

impl Default for BenchOpts {
    fn default() -> Self {
        Self {
            duration: Duration::from_millis(250),
            runs: 3,
            max_threads: 64,
            threads_list: None,
            prefill: 1000,
            csv_dir: "results".into(),
        }
    }
}

impl BenchOpts {
    /// Parses `--duration-ms N --runs N --max-threads N --prefill N
    /// --csv DIR` from the process arguments; unknown flags abort with
    /// a usage message.
    pub fn from_args() -> Self {
        let mut opts = Self::default();
        let mut args = std::env::args().skip(1);
        while let Some(flag) = args.next() {
            let mut value = |name: &str| {
                args.next()
                    .unwrap_or_else(|| panic!("missing value for {name}"))
            };
            match flag.as_str() {
                "--duration-ms" => {
                    opts.duration = Duration::from_millis(
                        value("--duration-ms").parse().expect("invalid duration"),
                    )
                }
                "--runs" => opts.runs = value("--runs").parse().expect("invalid runs"),
                "--max-threads" => {
                    opts.max_threads = value("--max-threads").parse().expect("invalid threads")
                }
                "--threads" => {
                    let list: Vec<usize> = value("--threads")
                        .split(',')
                        .map(|s| s.trim().parse().expect("invalid --threads list"))
                        .collect();
                    assert!(!list.is_empty(), "--threads list must not be empty");
                    opts.threads_list = Some(list);
                }
                "--prefill" => opts.prefill = value("--prefill").parse().expect("invalid prefill"),
                "--csv" => opts.csv_dir = value("--csv").into(),
                "--help" | "-h" => {
                    eprintln!(
                        "options: --duration-ms N  --runs N  --max-threads N  --threads A,B,C  --prefill N  --csv DIR\n\
                         paper settings: --duration-ms 5000 --runs 5 --threads 8,16,24,32,40,48,56 (Emerald x-axis)"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown flag {other}; try --help"),
            }
        }
        opts
    }

    /// The thread sweep for this host, capped by `--max-threads`, or
    /// the exact `--threads` list when one was given.
    ///
    /// The derived sweep always reaches at least 16 threads (subject to
    /// the cap): the paper's interesting regime is *high* thread
    /// counts, and on small hosts that regime only exists via
    /// oversubscription (the paper itself runs past its machines'
    /// hardware threads — the "oversubscribed after N" marks in
    /// Figures 2/5/9).
    pub fn sweep(&self) -> Vec<usize> {
        if let Some(list) = &self.threads_list {
            return list.clone();
        }
        let hw = sec_sync::topology::hardware_threads();
        let factor = 2usize.max(16usize.div_ceil(hw));
        sec_sync::topology::thread_sweep(hw, factor, self.max_threads)
    }

    /// Host/configuration banner printed at the top of every figure.
    pub fn banner(&self, what: &str) -> String {
        format!(
            "# {what}\n# host: {} hardware threads; duration {:?} x {} runs; prefill {}\n\
             # (paper: Intel Emerald 56 hw threads / IceLake 96 / Sapphire 192, 5s x 5 runs)",
            sec_sync::topology::hardware_threads(),
            self.duration,
            self.runs,
            self.prefill
        )
    }
}

/// Runs `ops_per_thread` operations of `mix` on each of `threads`
/// workers against `stack` and returns the wall-clock duration from the
/// moment all workers are released to the moment the last one finishes
/// (fixed-work measurement for Criterion's `iter_custom`).
pub fn timed_fixed_work<S: ConcurrentStack<u64>>(
    stack: &S,
    threads: usize,
    ops_per_thread: u64,
    mix: Mix,
) -> Duration {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use sec_workload::OpKind;

    let barrier = Barrier::new(threads + 1);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let stack = &stack;
                let barrier = &barrier;
                scope.spawn(move || {
                    let mut h = stack.register();
                    let mut rng = SmallRng::seed_from_u64(0xFEED ^ (t as u64) << 7);
                    barrier.wait();
                    for _ in 0..ops_per_thread {
                        match mix.classify(rng.gen_range(0..100)) {
                            OpKind::Push => h.push(rng.gen_range(0..100_000)),
                            OpKind::Pop => {
                                let _ = h.pop();
                            }
                            OpKind::Peek => {
                                let _ = h.peek();
                            }
                        }
                    }
                })
            })
            .collect();
        // Clock before the release barrier: see sec_workload::trace —
        // starting it after can miss the entire run on an oversubscribed
        // host (the workers finish while this thread is descheduled).
        let start = Instant::now();
        barrier.wait();
        for h in handles {
            h.join().expect("bench worker panicked");
        }
        start.elapsed()
    })
}

/// Fixed-work measurement for the queue family — the queue twin of
/// [`timed_fixed_work`]. A [`Mix`] draw that would `peek` a stack
/// performs a `dequeue` (queues have no read-only operation).
pub fn timed_queue_fixed_work<Q: ConcurrentQueue<u64>>(
    queue: &Q,
    threads: usize,
    ops_per_thread: u64,
    mix: Mix,
) -> Duration {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use sec_workload::OpKind;

    let barrier = Barrier::new(threads + 1);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let queue = &queue;
                let barrier = &barrier;
                scope.spawn(move || {
                    let mut h = queue.register();
                    let mut rng = SmallRng::seed_from_u64(0xFEED ^ (t as u64) << 7);
                    barrier.wait();
                    for _ in 0..ops_per_thread {
                        match mix.classify(rng.gen_range(0..100)) {
                            OpKind::Push => h.enqueue(rng.gen_range(0..100_000)),
                            OpKind::Pop | OpKind::Peek => {
                                let _ = h.dequeue();
                            }
                        }
                    }
                })
            })
            .collect();
        let start = Instant::now();
        barrier.wait();
        for h in handles {
            h.join().expect("bench worker panicked");
        }
        start.elapsed()
    })
}

/// Fixed-work measurement for the counter family. A [`Mix`] draw that
/// would `push` or `pop` performs a `fetch_add`; a `peek` draw performs
/// a `load` (the counter's read-only operation).
pub fn timed_counter_fixed_work(
    counter: &SecCounter,
    threads: usize,
    ops_per_thread: u64,
    mix: Mix,
) -> Duration {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use sec_workload::OpKind;

    let barrier = Barrier::new(threads + 1);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let counter = &counter;
                let barrier = &barrier;
                scope.spawn(move || {
                    let mut h = counter.register();
                    let mut rng = SmallRng::seed_from_u64(0xFEED ^ (t as u64) << 7);
                    barrier.wait();
                    for _ in 0..ops_per_thread {
                        match mix.classify(rng.gen_range(0..100)) {
                            OpKind::Push | OpKind::Pop => {
                                let _ = h.fetch_add(rng.gen_range(0..100_000));
                            }
                            OpKind::Peek => {
                                let _ = h.load();
                            }
                        }
                    }
                })
            })
            .collect();
        let start = Instant::now();
        barrier.wait();
        for h in handles {
            h.join().expect("bench worker panicked");
        }
        start.elapsed()
    })
}

/// Fixed-work measurement for the map family. A [`Mix`] draw that would
/// `push` performs an `insert`, a `pop` draw a `remove`, and a `peek`
/// draw a `get`; keys come from `dist`.
pub fn timed_map_fixed_work<M: ConcurrentMap<u64, u64>>(
    map: &M,
    threads: usize,
    ops_per_thread: u64,
    mix: Mix,
    dist: KeyDist,
) -> Duration {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use sec_workload::OpKind;

    let sampler = dist.sampler();
    let barrier = Barrier::new(threads + 1);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let map = &map;
                let barrier = &barrier;
                let sampler = &sampler;
                scope.spawn(move || {
                    let mut h = map.register();
                    let mut rng = SmallRng::seed_from_u64(0xFEED ^ (t as u64) << 7);
                    barrier.wait();
                    for _ in 0..ops_per_thread {
                        let key = sampler.sample(&mut rng);
                        match mix.classify(rng.gen_range(0..100)) {
                            OpKind::Push => {
                                let _ = h.insert(key, rng.gen_range(0..100_000));
                            }
                            OpKind::Pop => {
                                let _ = h.remove(&key);
                            }
                            OpKind::Peek => {
                                let _ = h.get(&key);
                            }
                        }
                    }
                })
            })
            .collect();
        let start = Instant::now();
        barrier.wait();
        for h in handles {
            h.join().expect("bench worker panicked");
        }
        start.elapsed()
    })
}

/// Prefills `stack` with `prefill` pseudo-random values.
fn prefill_stack<S: ConcurrentStack<u64>>(stack: &S, prefill: usize) {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let mut h = stack.register();
    let mut rng = SmallRng::seed_from_u64(0x5EED);
    for _ in 0..prefill {
        h.push(rng.gen_range(0..100_000));
    }
}

/// Prefills `queue` with `prefill` pseudo-random values.
fn prefill_queue<Q: ConcurrentQueue<u64>>(queue: &Q, prefill: usize) {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let mut h = queue.register();
    let mut rng = SmallRng::seed_from_u64(0x5EED);
    for _ in 0..prefill {
        h.enqueue(rng.gen_range(0..100_000));
    }
}

/// Prefills `map` with `prefill` uniformly drawn key/value pairs
/// (duplicate keys overwrite — the map ends up warm, not full).
fn prefill_map<M: ConcurrentMap<u64, u64>>(map: &M, prefill: usize, dist: KeyDist) {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let sampler = dist.sampler();
    let mut h = map.register();
    let mut rng = SmallRng::seed_from_u64(0x5EED);
    for _ in 0..prefill {
        let key = sampler.sample(&mut rng);
        h.insert(key, rng.gen_range(0..100_000));
    }
}

/// Constructs a fresh instance of `algo`, prefills it, and measures the
/// fixed-work duration (Criterion `iter_custom` building block; one
/// stack or queue per call so iterations are independent).
pub fn timed_algo(
    algo: Algo,
    threads: usize,
    ops_per_thread: u64,
    mix: Mix,
    prefill: usize,
) -> Duration {
    let cap = threads + 1;
    match algo {
        Algo::Sec { aggregators } => {
            let s: SecStack<u64> = SecStack::with_config(SecConfig::new(aggregators, cap));
            prefill_stack(&s, prefill);
            timed_fixed_work(&s, threads, ops_per_thread, mix)
        }
        Algo::SecAdaptive { min_k, max_k } => {
            let s: SecStack<u64> = SecStack::with_config(SecConfig::adaptive(min_k, max_k, cap));
            prefill_stack(&s, prefill);
            timed_fixed_work(&s, threads, ops_per_thread, mix)
        }
        Algo::Trb => {
            let s: TreiberStack<u64> = TreiberStack::new(cap);
            prefill_stack(&s, prefill);
            timed_fixed_work(&s, threads, ops_per_thread, mix)
        }
        Algo::Eb => {
            let s: EbStack<u64> = EbStack::new(cap);
            prefill_stack(&s, prefill);
            timed_fixed_work(&s, threads, ops_per_thread, mix)
        }
        Algo::Fc => {
            let s: FcStack<u64> = FcStack::new(cap);
            prefill_stack(&s, prefill);
            timed_fixed_work(&s, threads, ops_per_thread, mix)
        }
        Algo::Cc => {
            let s: CcStack<u64> = CcStack::new(cap);
            prefill_stack(&s, prefill);
            timed_fixed_work(&s, threads, ops_per_thread, mix)
        }
        Algo::Tsi => {
            let s: TsiStack<u64> = TsiStack::new(cap);
            prefill_stack(&s, prefill);
            timed_fixed_work(&s, threads, ops_per_thread, mix)
        }
        Algo::TrbHp => {
            let s: TreiberHpStack<u64> = TreiberHpStack::new(cap);
            prefill_stack(&s, prefill);
            timed_fixed_work(&s, threads, ops_per_thread, mix)
        }
        Algo::Lck => {
            let s: LockedStack<u64> = LockedStack::new(cap);
            prefill_stack(&s, prefill);
            timed_fixed_work(&s, threads, ops_per_thread, mix)
        }
        Algo::SecQueue => {
            let q: SecQueue<u64> = SecQueue::new(cap);
            prefill_queue(&q, prefill);
            timed_queue_fixed_work(&q, threads, ops_per_thread, mix)
        }
        Algo::MsQ => {
            let q: MsQueue<u64> = MsQueue::new(cap);
            prefill_queue(&q, prefill);
            timed_queue_fixed_work(&q, threads, ops_per_thread, mix)
        }
        Algo::LckQ => {
            let q: LockedQueue<u64> = LockedQueue::new(cap);
            prefill_queue(&q, prefill);
            timed_queue_fixed_work(&q, threads, ops_per_thread, mix)
        }
        Algo::SecCounter => {
            let c = SecCounter::with_config(SecConfig::new(2, cap));
            timed_counter_fixed_work(&c, threads, ops_per_thread, mix)
        }
        Algo::SecMap => {
            let dist = KeyDist::Uniform { keys: 1024 };
            let m: SecMap<u64, u64> = SecMap::with_config(SecConfig::new(2, cap));
            prefill_map(&m, prefill, dist);
            timed_map_fixed_work(&m, threads, ops_per_thread, mix, dist)
        }
        Algo::LckMap => {
            let dist = KeyDist::Uniform { keys: 1024 };
            let m: LockedHashMap<u64, u64> = LockedHashMap::new(cap);
            prefill_map(&m, prefill, dist);
            timed_map_fixed_work(&m, threads, ops_per_thread, mix, dist)
        }
    }
}
