//! Soak test: hours-long randomized stress with conservation checking.
//!
//! `validate` answers "is it correct right now" in seconds; this binary
//! answers "does it stay correct under sustained random load" — the
//! test an adopter runs overnight before trusting a concurrent data
//! structure. Every worker tags its pushes (`tid << 40 | counter`) and
//! tallies what it pushed and popped; at the end the stack is drained
//! and three invariants are checked per algorithm:
//!
//! 1. **count conservation** — pushes = pops + drained remainder,
//! 2. **sum conservation** — the tag sums balance the same way (catches
//!    duplication that count alone can miss),
//! 3. **no phantoms** — every drained tag decodes to a valid worker.
//!
//! ```text
//! cargo run -p sec-bench --release --bin soak -- --duration-ms 60000
//! ```

use sec_bench::BenchOpts;
use sec_core::{ConcurrentQueue, ConcurrentStack, QueueHandle, StackHandle};
use sec_workload::{EXTENDED_LINEUP, MAP_LINEUP, QUEUE_LINEUP};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;
use std::time::Instant;

/// Per-worker tally, combined after the run.
#[derive(Default, Clone, Copy)]
struct Tally {
    pushes: u64,
    push_sum: u128,
    pops: u64,
    pop_sum: u128,
}

fn soak_one<S: ConcurrentStack<u64>>(
    stack: &S,
    threads: usize,
    opts: &BenchOpts,
) -> Result<(), String> {
    let barrier = Barrier::new(threads + 1);
    let stop = AtomicBool::new(false);

    let tallies: Vec<Tally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let stack = &stack;
                let barrier = &barrier;
                let stop = &stop;
                scope.spawn(move || {
                    let mut h = stack.register();
                    let mut tally = Tally::default();
                    // Cheap xorshift; value tags encode the worker.
                    let mut x = (t as u64 + 1) | 1;
                    let mut counter = 0u64;
                    barrier.wait();
                    while !stop.load(Ordering::Relaxed) {
                        for _ in 0..64 {
                            x ^= x << 13;
                            x ^= x >> 7;
                            x ^= x << 17;
                            if x % 100 < 55 {
                                // Slight push bias keeps the stack populated.
                                let v = ((t as u64) << 40) | counter;
                                counter += 1;
                                h.push(v);
                                tally.pushes += 1;
                                tally.push_sum += v as u128;
                            } else if let Some(v) = h.pop() {
                                tally.pops += 1;
                                tally.pop_sum += v as u128;
                            }
                        }
                    }
                    tally
                })
            })
            .collect();
        barrier.wait();
        let deadline = Instant::now() + opts.duration;
        while Instant::now() < deadline {
            std::thread::sleep(opts.duration.min(std::time::Duration::from_millis(200)));
        }
        stop.store(true, Ordering::Relaxed);
        handles
            .into_iter()
            .map(|h| h.join().expect("soak worker panicked"))
            .collect()
    });

    let mut total = Tally::default();
    for t in &tallies {
        total.pushes += t.pushes;
        total.push_sum += t.push_sum;
        total.pops += t.pops;
        total.pop_sum += t.pop_sum;
    }

    // Drain and fold the remainder into the pop side.
    let mut h = stack.register();
    let mut drained = 0u64;
    while let Some(v) = h.pop() {
        drained += 1;
        total.pops += 1;
        total.pop_sum += v as u128;
        let tid = (v >> 40) as usize;
        if tid >= threads {
            return Err(format!("phantom value {v:#x}: no worker {tid}"));
        }
    }

    if total.pushes != total.pops {
        return Err(format!(
            "count conservation violated: {} pushed, {} popped (incl. {} drained)",
            total.pushes, total.pops, drained
        ));
    }
    if total.push_sum != total.pop_sum {
        return Err(format!(
            "sum conservation violated: pushed {} vs popped {}",
            total.push_sum, total.pop_sum
        ));
    }
    println!(
        "    {:>9} ops conserved ({} drained at shutdown)",
        total.pushes + total.pops,
        drained
    );
    Ok(())
}

/// The queue-family soak: identical invariants, FIFO handles.
fn soak_queue_one<Q: ConcurrentQueue<u64>>(
    queue: &Q,
    threads: usize,
    opts: &BenchOpts,
) -> Result<(), String> {
    let barrier = Barrier::new(threads + 1);
    let stop = AtomicBool::new(false);

    let tallies: Vec<Tally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let queue = &queue;
                let barrier = &barrier;
                let stop = &stop;
                scope.spawn(move || {
                    let mut h = queue.register();
                    let mut tally = Tally::default();
                    let mut x = (t as u64 + 1) | 1;
                    let mut counter = 0u64;
                    barrier.wait();
                    while !stop.load(Ordering::Relaxed) {
                        for _ in 0..64 {
                            x ^= x << 13;
                            x ^= x >> 7;
                            x ^= x << 17;
                            if x % 100 < 55 {
                                let v = ((t as u64) << 40) | counter;
                                counter += 1;
                                h.enqueue(v);
                                tally.pushes += 1;
                                tally.push_sum += v as u128;
                            } else if let Some(v) = h.dequeue() {
                                tally.pops += 1;
                                tally.pop_sum += v as u128;
                            }
                        }
                    }
                    tally
                })
            })
            .collect();
        barrier.wait();
        let deadline = Instant::now() + opts.duration;
        while Instant::now() < deadline {
            std::thread::sleep(opts.duration.min(std::time::Duration::from_millis(200)));
        }
        stop.store(true, Ordering::Relaxed);
        handles
            .into_iter()
            .map(|h| h.join().expect("soak worker panicked"))
            .collect()
    });

    let mut total = Tally::default();
    for t in &tallies {
        total.pushes += t.pushes;
        total.push_sum += t.push_sum;
        total.pops += t.pops;
        total.pop_sum += t.pop_sum;
    }

    let mut h = queue.register();
    let mut drained = 0u64;
    while let Some(v) = h.dequeue() {
        drained += 1;
        total.pops += 1;
        total.pop_sum += v as u128;
        let tid = (v >> 40) as usize;
        if tid >= threads {
            return Err(format!("phantom value {v:#x}: no worker {tid}"));
        }
    }

    if total.pushes != total.pops {
        return Err(format!(
            "count conservation violated: {} enqueued, {} dequeued (incl. {} drained)",
            total.pushes, total.pops, drained
        ));
    }
    if total.push_sum != total.pop_sum {
        return Err(format!(
            "sum conservation violated: enqueued {} vs dequeued {}",
            total.push_sum, total.pop_sum
        ));
    }
    println!(
        "    {:>9} ops conserved ({} drained at shutdown)",
        total.pushes + total.pops,
        drained
    );
    Ok(())
}

/// The counter-family soak: every worker tallies the deltas it added;
/// at the end the counter's value must equal the grand total (no lost
/// or duplicated batch slots).
fn soak_counter_one(
    counter: &sec_core::counter::SecCounter,
    threads: usize,
    opts: &BenchOpts,
) -> Result<(), String> {
    let barrier = Barrier::new(threads + 1);
    let stop = AtomicBool::new(false);

    let sums: Vec<u128> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let counter = &counter;
                let barrier = &barrier;
                let stop = &stop;
                scope.spawn(move || {
                    let mut h = counter.register();
                    let mut added = 0u128;
                    let mut x = (t as u64 + 1) | 1;
                    barrier.wait();
                    while !stop.load(Ordering::Relaxed) {
                        for _ in 0..64 {
                            x ^= x << 13;
                            x ^= x >> 7;
                            x ^= x << 17;
                            if x % 100 < 80 {
                                let delta = x % 1_000;
                                let _ = h.fetch_add(delta);
                                added += delta as u128;
                            } else {
                                let _ = h.load();
                            }
                        }
                    }
                    added
                })
            })
            .collect();
        barrier.wait();
        let deadline = Instant::now() + opts.duration;
        while Instant::now() < deadline {
            std::thread::sleep(opts.duration.min(std::time::Duration::from_millis(200)));
        }
        stop.store(true, Ordering::Relaxed);
        handles
            .into_iter()
            .map(|h| h.join().expect("soak worker panicked"))
            .collect()
    });

    let expected: u128 = sums.iter().sum();
    let got = counter.load() as u128;
    if got != expected {
        return Err(format!(
            "sum conservation violated: workers added {expected}, counter reads {got}"
        ));
    }
    println!("    {:>9} summed into the counter, conserved", expected);
    Ok(())
}

/// The map-family soak: every worker tallies what it inserted and what
/// each operation *returned* (displaced previous values, removed
/// values); draining the map at the end must balance the books —
/// inserts = displacements + removals + drained remainder, by count and
/// by value sum, and every drained value decodes to a valid worker.
fn soak_map_one<M: sec_core::ConcurrentMap<u64, u64>>(
    map: &M,
    threads: usize,
    opts: &BenchOpts,
) -> Result<(), String> {
    use sec_core::MapHandle;

    const KEYS: u64 = 512;
    let barrier = Barrier::new(threads + 1);
    let stop = AtomicBool::new(false);

    /// Per-worker map tally.
    #[derive(Default, Clone, Copy)]
    struct MapTally {
        inserted: u64,
        inserted_sum: u128,
        displaced: u64,
        displaced_sum: u128,
        removed: u64,
        removed_sum: u128,
    }

    let tallies: Vec<MapTally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let map = &map;
                let barrier = &barrier;
                let stop = &stop;
                scope.spawn(move || {
                    let mut h = map.register();
                    let mut tally = MapTally::default();
                    let mut x = (t as u64 + 1) | 1;
                    let mut counter = 0u64;
                    barrier.wait();
                    while !stop.load(Ordering::Relaxed) {
                        for _ in 0..64 {
                            x ^= x << 13;
                            x ^= x >> 7;
                            x ^= x << 17;
                            let key = x % KEYS;
                            if x % 100 < 40 {
                                let v = ((t as u64) << 40) | counter;
                                counter += 1;
                                tally.inserted += 1;
                                tally.inserted_sum += v as u128;
                                if let Some(prev) = h.insert(key, v) {
                                    tally.displaced += 1;
                                    tally.displaced_sum += prev as u128;
                                }
                            } else if x % 100 < 80 {
                                if let Some(v) = h.remove(&key) {
                                    tally.removed += 1;
                                    tally.removed_sum += v as u128;
                                }
                            } else {
                                let _ = h.get(&key);
                            }
                        }
                    }
                    tally
                })
            })
            .collect();
        barrier.wait();
        let deadline = Instant::now() + opts.duration;
        while Instant::now() < deadline {
            std::thread::sleep(opts.duration.min(std::time::Duration::from_millis(200)));
        }
        stop.store(true, Ordering::Relaxed);
        handles
            .into_iter()
            .map(|h| h.join().expect("soak worker panicked"))
            .collect()
    });

    let mut total = MapTally::default();
    for t in &tallies {
        total.inserted += t.inserted;
        total.inserted_sum += t.inserted_sum;
        total.displaced += t.displaced;
        total.displaced_sum += t.displaced_sum;
        total.removed += t.removed;
        total.removed_sum += t.removed_sum;
    }

    // Drain the survivors key by key and fold them into the out side.
    let mut h = map.register();
    let mut drained = 0u64;
    let mut drained_sum = 0u128;
    for key in 0..KEYS {
        if let Some(v) = h.remove(&key) {
            drained += 1;
            drained_sum += v as u128;
            let tid = (v >> 40) as usize;
            if tid >= threads {
                return Err(format!("phantom value {v:#x}: no worker {tid}"));
            }
        }
    }

    if total.inserted != total.displaced + total.removed + drained {
        return Err(format!(
            "count conservation violated: {} inserted vs {} displaced + {} removed + {} drained",
            total.inserted, total.displaced, total.removed, drained
        ));
    }
    if total.inserted_sum != total.displaced_sum + total.removed_sum + drained_sum {
        return Err(format!(
            "sum conservation violated: inserted {} vs displaced {} + removed {} + drained {}",
            total.inserted_sum, total.displaced_sum, total.removed_sum, drained_sum
        ));
    }
    println!(
        "    {:>9} ops conserved ({} drained at shutdown)",
        total.inserted + total.removed,
        drained
    );
    Ok(())
}

fn main() {
    let opts = BenchOpts::from_args();
    let threads = *opts.sweep().last().unwrap_or(&4);
    println!(
        "{}",
        opts.banner("Soak: sustained random load + conservation")
    );
    println!("# {threads} threads, {:?} per algorithm\n", opts.duration);

    let mut failures = 0u32;
    for algo in EXTENDED_LINEUP
        .into_iter()
        .chain(QUEUE_LINEUP)
        .chain([sec_workload::Algo::SecCounter])
        .chain(MAP_LINEUP)
    {
        println!("  soaking {algo} ...");
        let result = run(algo, threads, &opts);
        if let Err(e) = result {
            println!("    FAIL: {e}");
            failures += 1;
        }
    }
    if failures == 0 {
        println!("\nall algorithms conserved under soak");
    } else {
        println!("\n{failures} algorithm(s) FAILED the soak");
        std::process::exit(1);
    }
}

/// Constructs the stack for `algo` and soaks it. (Mirrors
/// `sec_workload::run_algo`, but the soak needs direct generic access
/// to drain through the same handle type.)
fn run(algo: sec_workload::Algo, threads: usize, opts: &BenchOpts) -> Result<(), String> {
    use sec_baselines::{
        CcStack, EbStack, FcStack, LockedHashMap, LockedQueue, LockedStack, MsQueue,
        TreiberHpStack, TreiberStack, TsiStack,
    };
    use sec_core::counter::SecCounter;
    use sec_core::{SecConfig, SecMap, SecQueue, SecStack};
    use sec_workload::Algo;

    let cap = threads + 1;
    match algo {
        Algo::Sec { aggregators } => soak_one(
            &SecStack::<u64>::with_config(SecConfig::new(aggregators, cap)),
            threads,
            opts,
        ),
        Algo::SecAdaptive { min_k, max_k } => soak_one(
            &SecStack::<u64>::with_config(SecConfig::adaptive(min_k, max_k, cap)),
            threads,
            opts,
        ),
        Algo::Trb => soak_one(&TreiberStack::<u64>::new(cap), threads, opts),
        Algo::Eb => soak_one(&EbStack::<u64>::new(cap), threads, opts),
        Algo::Fc => soak_one(&FcStack::<u64>::new(cap), threads, opts),
        Algo::Cc => soak_one(&CcStack::<u64>::new(cap), threads, opts),
        Algo::Tsi => soak_one(&TsiStack::<u64>::new(cap), threads, opts),
        Algo::TrbHp => soak_one(&TreiberHpStack::<u64>::new(cap), threads, opts),
        Algo::Lck => soak_one(&LockedStack::<u64>::new(cap), threads, opts),
        Algo::SecQueue => soak_queue_one(&SecQueue::<u64>::new(cap), threads, opts),
        Algo::MsQ => soak_queue_one(&MsQueue::<u64>::new(cap), threads, opts),
        Algo::LckQ => soak_queue_one(&LockedQueue::<u64>::new(cap), threads, opts),
        Algo::SecCounter => soak_counter_one(
            &SecCounter::with_config(SecConfig::new(2, cap)),
            threads,
            opts,
        ),
        Algo::SecMap => soak_map_one(
            &SecMap::<u64, u64>::with_config(SecConfig::new(2, cap)),
            threads,
            opts,
        ),
        Algo::LckMap => soak_map_one(&LockedHashMap::<u64, u64>::new(cap), threads, opts),
    }
}
