//! Artifact-style validation entry point: quick correctness checks for
//! every stack, queue, counter and map implementation, printed as a
//! PASS/FAIL report. Runs in seconds; the full evidence is
//! `cargo test --workspace`.
//!
//! ```text
//! cargo run -p sec-bench --release --bin validate
//! ```

use sec_baselines::{
    CcStack, EbStack, FcStack, LockedHashMap, LockedQueue, LockedStack, MsQueue, TreiberHpStack,
    TreiberStack, TsiStack,
};
use sec_core::counter::SecCounter;
use sec_core::{
    ConcurrentMap, ConcurrentQueue, ConcurrentStack, MapHandle, QueueHandle, SecConfig, SecMap,
    SecQueue, SecStack, StackHandle,
};
use std::collections::HashSet;
use std::thread;

/// LIFO check, single thread.
fn check_lifo<S: ConcurrentStack<u64>>(stack: &S) -> Result<(), String> {
    let mut h = stack.register();
    for i in 0..1_000 {
        h.push(i);
    }
    for i in (0..1_000).rev() {
        let got = h.pop();
        if got != Some(i) {
            return Err(format!("expected Some({i}), got {got:?}"));
        }
    }
    if h.pop().is_some() {
        return Err("stack not empty after drain".into());
    }
    Ok(())
}

/// Conservation check, concurrent.
fn check_conservation<S: ConcurrentStack<u64>>(stack: &S, threads: usize) -> Result<(), String> {
    const PER: usize = 2_000;
    let popped: Vec<Vec<u64>> = thread::scope(|scope| {
        (0..threads)
            .map(|t| {
                let stack = &stack;
                scope.spawn(move || {
                    let mut h = stack.register();
                    let mut got = Vec::new();
                    for i in 0..PER {
                        h.push((t * PER + i) as u64);
                        if i % 2 == 0 {
                            if let Some(v) = h.pop() {
                                got.push(v);
                            }
                        }
                    }
                    got
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|j| j.join().unwrap())
            .collect()
    });
    let mut seen = HashSet::new();
    for v in popped.into_iter().flatten() {
        if !seen.insert(v) {
            return Err(format!("value {v} popped twice"));
        }
    }
    let mut h = stack.register();
    while let Some(v) = h.pop() {
        if !seen.insert(v) {
            return Err(format!("value {v} popped twice in drain"));
        }
    }
    if seen.len() != threads * PER {
        return Err(format!(
            "lost values: {} of {} accounted",
            seen.len(),
            threads * PER
        ));
    }
    Ok(())
}

/// FIFO check, single thread.
fn check_fifo<Q: ConcurrentQueue<u64>>(queue: &Q) -> Result<(), String> {
    let mut h = queue.register();
    for i in 0..1_000 {
        h.enqueue(i);
    }
    for i in 0..1_000 {
        let got = h.dequeue();
        if got != Some(i) {
            return Err(format!("expected Some({i}), got {got:?}"));
        }
    }
    if h.dequeue().is_some() {
        return Err("queue not empty after drain".into());
    }
    Ok(())
}

/// Queue conservation check, concurrent.
fn check_queue_conservation<Q: ConcurrentQueue<u64>>(
    queue: &Q,
    threads: usize,
) -> Result<(), String> {
    const PER: usize = 2_000;
    let dequeued: Vec<Vec<u64>> = thread::scope(|scope| {
        (0..threads)
            .map(|t| {
                let queue = &queue;
                scope.spawn(move || {
                    let mut h = queue.register();
                    let mut got = Vec::new();
                    for i in 0..PER {
                        h.enqueue((t * PER + i) as u64);
                        if i % 2 == 0 {
                            if let Some(v) = h.dequeue() {
                                got.push(v);
                            }
                        }
                    }
                    got
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|j| j.join().unwrap())
            .collect()
    });
    let mut seen = HashSet::new();
    for v in dequeued.into_iter().flatten() {
        if !seen.insert(v) {
            return Err(format!("value {v} dequeued twice"));
        }
    }
    let mut h = queue.register();
    while let Some(v) = h.dequeue() {
        if !seen.insert(v) {
            return Err(format!("value {v} dequeued twice in drain"));
        }
    }
    if seen.len() != threads * PER {
        return Err(format!(
            "lost values: {} of {} accounted",
            seen.len(),
            threads * PER
        ));
    }
    Ok(())
}

/// Counter check, single thread: fetch_add returns running prefix sums.
fn check_counter_sequential(counter: &SecCounter) -> Result<(), String> {
    let mut h = counter.register();
    let mut expected = 0u64;
    for i in 0..1_000u64 {
        let prev = h.fetch_add(i);
        if prev != expected {
            return Err(format!("expected prefix {expected}, got {prev}"));
        }
        expected += i;
    }
    if h.load() != expected {
        return Err(format!("expected total {expected}, got {}", h.load()));
    }
    Ok(())
}

/// Counter conservation check, concurrent: every fetch_add return value
/// is a distinct batch offset, and the final value is the total added.
fn check_counter_conservation(counter: &SecCounter, threads: usize) -> Result<(), String> {
    const PER: u64 = 2_000;
    let sums: Vec<u64> = thread::scope(|scope| {
        (0..threads)
            .map(|t| {
                let counter = &counter;
                scope.spawn(move || {
                    let mut h = counter.register();
                    let mut added = 0u64;
                    for i in 0..PER {
                        let delta = (t as u64) + i % 7 + 1;
                        let _ = h.fetch_add(delta);
                        added += delta;
                    }
                    added
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|j| j.join().unwrap())
            .collect()
    });
    let expected: u64 = sums.iter().sum();
    if counter.load() != expected {
        return Err(format!(
            "lost adds: workers added {expected}, counter reads {}",
            counter.load()
        ));
    }
    Ok(())
}

/// Map check, single thread: insert/get/remove round-trip on every key.
fn check_map_sequential<M: ConcurrentMap<u64, u64>>(map: &M) -> Result<(), String> {
    let mut h = map.register();
    for k in 0..1_000 {
        if let Some(v) = h.insert(k, k * 10) {
            return Err(format!("fresh insert of {k} displaced {v}"));
        }
    }
    for k in 0..1_000 {
        if h.get(&k) != Some(k * 10) {
            return Err(format!("get({k}) lost the inserted value"));
        }
    }
    for k in 0..1_000 {
        if h.remove(&k) != Some(k * 10) {
            return Err(format!("remove({k}) lost the inserted value"));
        }
        if h.get(&k).is_some() {
            return Err(format!("get({k}) observed a removed key"));
        }
    }
    Ok(())
}

/// Map conservation check, concurrent: workers insert tagged values on
/// a shared key range; inserts must balance displacements + removals +
/// the drained remainder, with no value seen twice.
fn check_map_conservation<M: ConcurrentMap<u64, u64>>(
    map: &M,
    threads: usize,
) -> Result<(), String> {
    const PER: usize = 2_000;
    const KEYS: u64 = 256;
    let outs: Vec<Vec<u64>> = thread::scope(|scope| {
        (0..threads)
            .map(|t| {
                let map = &map;
                scope.spawn(move || {
                    let mut h = map.register();
                    // Values a worker saw *leave* the map (displaced or
                    // removed); each inserted value must exit exactly once.
                    let mut out = Vec::new();
                    for i in 0..PER {
                        let key = ((t * PER + i) as u64 * 0x9E37_79B9) % KEYS;
                        let v = ((t as u64) << 40) | i as u64;
                        if let Some(prev) = h.insert(key, v) {
                            out.push(prev);
                        }
                        if i % 2 == 0 {
                            if let Some(removed) = h.remove(&((key + 1) % KEYS)) {
                                out.push(removed);
                            }
                        }
                    }
                    out
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|j| j.join().unwrap())
            .collect()
    });
    let mut seen = HashSet::new();
    for v in outs.into_iter().flatten() {
        if !seen.insert(v) {
            return Err(format!("value {v:#x} left the map twice"));
        }
    }
    let mut h = map.register();
    for key in 0..KEYS {
        if let Some(v) = h.remove(&key) {
            if !seen.insert(v) {
                return Err(format!("value {v:#x} left the map twice in drain"));
            }
        }
    }
    if seen.len() != threads * PER {
        return Err(format!(
            "lost values: {} of {} accounted",
            seen.len(),
            threads * PER
        ));
    }
    Ok(())
}

fn report(name: &str, what: &str, r: Result<(), String>, failures: &mut u32) {
    match r {
        Ok(()) => println!("  PASS  {name:<6} {what}"),
        Err(e) => {
            println!("  FAIL  {name:<6} {what}: {e}");
            *failures += 1;
        }
    }
}

fn main() {
    const THREADS: usize = 8;
    let mut failures = 0u32;
    println!("validating all stack implementations ({THREADS} threads)...");

    macro_rules! validate {
        ($name:expr, $make:expr) => {{
            let s = $make;
            report($name, "sequential LIFO", check_lifo(&s), &mut failures);
            let s = $make;
            report(
                $name,
                "concurrent conservation",
                check_conservation(&s, THREADS),
                &mut failures,
            );
        }};
    }

    validate!(
        "SEC",
        SecStack::<u64>::with_config(SecConfig::new(2, THREADS + 1))
    );
    validate!("TRB", TreiberStack::<u64>::new(THREADS + 1));
    validate!("EB", EbStack::<u64>::new(THREADS + 1));
    validate!("FC", FcStack::<u64>::new(THREADS + 1));
    validate!("CC", CcStack::<u64>::new(THREADS + 1));
    validate!("TSI", TsiStack::<u64>::new(THREADS + 1));
    validate!("TRB-HP", TreiberHpStack::<u64>::new(THREADS + 1));
    validate!("LCK", LockedStack::<u64>::new(THREADS + 1));

    println!("validating all queue implementations ({THREADS} threads)...");

    macro_rules! validate_queue {
        ($name:expr, $make:expr) => {{
            let q = $make;
            report($name, "sequential FIFO", check_fifo(&q), &mut failures);
            let q = $make;
            report(
                $name,
                "concurrent conservation",
                check_queue_conservation(&q, THREADS),
                &mut failures,
            );
        }};
    }

    validate_queue!("SEC-Q", SecQueue::<u64>::new(THREADS + 1));
    validate_queue!(
        "SEC-Q0",
        SecQueue::<u64>::new(THREADS + 1).rendezvous_spins(0)
    );
    validate_queue!("MS", MsQueue::<u64>::new(THREADS + 1));
    validate_queue!("LCK-Q", LockedQueue::<u64>::new(THREADS + 1));

    println!("validating the counter implementation ({THREADS} threads)...");
    {
        let c = SecCounter::with_config(SecConfig::new(2, THREADS + 1));
        report(
            "SEC-C",
            "sequential prefix sums",
            check_counter_sequential(&c),
            &mut failures,
        );
        let c = SecCounter::with_config(SecConfig::new(2, THREADS + 1));
        report(
            "SEC-C",
            "concurrent conservation",
            check_counter_conservation(&c, THREADS),
            &mut failures,
        );
    }

    println!("validating all map implementations ({THREADS} threads)...");

    macro_rules! validate_map {
        ($name:expr, $make:expr) => {{
            let m = $make;
            report(
                $name,
                "sequential round-trip",
                check_map_sequential(&m),
                &mut failures,
            );
            let m = $make;
            report(
                $name,
                "concurrent conservation",
                check_map_conservation(&m, THREADS),
                &mut failures,
            );
        }};
    }

    validate_map!(
        "SEC-M",
        SecMap::<u64, u64>::with_config(SecConfig::new(2, THREADS + 1))
    );
    validate_map!("LCK-M", LockedHashMap::<u64, u64>::new(THREADS + 1));

    // SEC accounting identity under load.
    {
        let s: SecStack<u64> = SecStack::with_config(SecConfig::new(2, THREADS + 1));
        let _ = check_conservation(&s, THREADS);
        let r = s.stats().report();
        report(
            "SEC",
            "batch accounting identity",
            if r.eliminated + r.combined == r.ops {
                Ok(())
            } else {
                Err(format!("{r:?}"))
            },
            &mut failures,
        );
    }

    // SEC-M accounting identity under load: a map op can never
    // eliminate, so every operation must be combined.
    {
        let m: SecMap<u64, u64> = SecMap::with_config(SecConfig::new(2, THREADS + 1));
        let _ = check_map_conservation(&m, THREADS);
        let r = m.stats().report();
        report(
            "SEC-M",
            "batch accounting identity",
            if r.eliminated == 0 && r.combined == r.ops {
                Ok(())
            } else {
                Err(format!("{r:?}"))
            },
            &mut failures,
        );
    }

    // sec-trace overhead gate (DESIGN.md §14). Two claims guard the
    // "zero hot-path cost" budget:
    //
    //  * disabled-vs-seed is structural — without the `trace` cargo
    //    feature the engine's `tracer()` accessor is a constant `None`
    //    and the optimizer erases every hook, so the binary is the
    //    seed binary; no measurement can distinguish them.
    //  * what *can* regress is the measurable configuration axis, so
    //    that is what this gate measures within one build: throughput
    //    with `TraceConfig::off()` vs `TraceConfig::on()` (sampled 1
    //    in 256), interleaved pairs so environmental drift biases both
    //    arms equally, medians compared. Without the feature both arms
    //    compile to the same path, so the ratio proves the runtime
    //    knob costs nothing in the shipped (untraced) build — that is
    //    the 2% budget of the "zero hot-path cost" claim. With the
    //    feature, the ratio is the real cost of *enabled* sampled
    //    tracing — per-batch events always fire, so on an
    //    oversubscribed host it is a different, looser budget (15%).
    //
    // Short runs on a shared host are noisy, so the gate retries up to
    // three times before declaring a regression.
    {
        use sec_core::TraceConfig;
        use sec_workload::{run_algo, Algo, Mix, RunConfig};
        use std::time::Duration;

        fn median(mut v: Vec<f64>) -> f64 {
            v.sort_by(|a, b| a.total_cmp(b));
            v[v.len() / 2]
        }

        let base = RunConfig {
            duration: Duration::from_millis(100),
            prefill: 1000,
            ..RunConfig::new(4.min(THREADS), Mix::UPDATE_100)
        };
        let measure = |trace: TraceConfig, seed: u64| {
            let cfg = RunConfig {
                trace: Some(trace),
                seed,
                ..base
            };
            run_algo(Algo::Sec { aggregators: 2 }, &cfg).result.mops()
        };
        let (floor, budget_pct, arm) = if cfg!(feature = "trace") {
            (0.85, 15.0, "enabled sampled tracing")
        } else {
            (0.98, 2.0, "the disabled runtime knob")
        };
        let mut ratio = 0.0;
        for attempt in 0u64..3 {
            let mut off = Vec::with_capacity(5);
            let mut on = Vec::with_capacity(5);
            for r in 0u64..5 {
                let seed = 0x7ACE ^ (attempt << 8) ^ r;
                off.push(measure(TraceConfig::off(), seed));
                on.push(measure(TraceConfig::on().sample_shift(8), seed));
            }
            ratio = median(on) / median(off);
            if ratio >= floor {
                break;
            }
        }
        report(
            "SEC",
            &format!("sec-trace overhead gate (on/off throughput ratio {ratio:.3})"),
            if ratio >= floor {
                Ok(())
            } else {
                Err(format!(
                    "{arm} lost {:.1}% throughput (budget: {budget_pct}%)",
                    100.0 * (1.0 - ratio)
                ))
            },
            &mut failures,
        );
    }

    if failures == 0 {
        println!("all validations passed");
    } else {
        println!("{failures} validation(s) FAILED");
        std::process::exit(1);
    }
}
