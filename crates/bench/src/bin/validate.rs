//! Artifact-style validation entry point: quick correctness checks for
//! every stack and queue implementation, printed as a PASS/FAIL report.
//! Runs in seconds; the full evidence is `cargo test --workspace`.
//!
//! ```text
//! cargo run -p sec-bench --release --bin validate
//! ```

use sec_baselines::{
    CcStack, EbStack, FcStack, LockedQueue, LockedStack, MsQueue, TreiberHpStack, TreiberStack,
    TsiStack,
};
use sec_core::{
    ConcurrentQueue, ConcurrentStack, QueueHandle, SecConfig, SecQueue, SecStack, StackHandle,
};
use std::collections::HashSet;
use std::thread;

/// LIFO check, single thread.
fn check_lifo<S: ConcurrentStack<u64>>(stack: &S) -> Result<(), String> {
    let mut h = stack.register();
    for i in 0..1_000 {
        h.push(i);
    }
    for i in (0..1_000).rev() {
        let got = h.pop();
        if got != Some(i) {
            return Err(format!("expected Some({i}), got {got:?}"));
        }
    }
    if h.pop().is_some() {
        return Err("stack not empty after drain".into());
    }
    Ok(())
}

/// Conservation check, concurrent.
fn check_conservation<S: ConcurrentStack<u64>>(stack: &S, threads: usize) -> Result<(), String> {
    const PER: usize = 2_000;
    let popped: Vec<Vec<u64>> = thread::scope(|scope| {
        (0..threads)
            .map(|t| {
                let stack = &stack;
                scope.spawn(move || {
                    let mut h = stack.register();
                    let mut got = Vec::new();
                    for i in 0..PER {
                        h.push((t * PER + i) as u64);
                        if i % 2 == 0 {
                            if let Some(v) = h.pop() {
                                got.push(v);
                            }
                        }
                    }
                    got
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|j| j.join().unwrap())
            .collect()
    });
    let mut seen = HashSet::new();
    for v in popped.into_iter().flatten() {
        if !seen.insert(v) {
            return Err(format!("value {v} popped twice"));
        }
    }
    let mut h = stack.register();
    while let Some(v) = h.pop() {
        if !seen.insert(v) {
            return Err(format!("value {v} popped twice in drain"));
        }
    }
    if seen.len() != threads * PER {
        return Err(format!(
            "lost values: {} of {} accounted",
            seen.len(),
            threads * PER
        ));
    }
    Ok(())
}

/// FIFO check, single thread.
fn check_fifo<Q: ConcurrentQueue<u64>>(queue: &Q) -> Result<(), String> {
    let mut h = queue.register();
    for i in 0..1_000 {
        h.enqueue(i);
    }
    for i in 0..1_000 {
        let got = h.dequeue();
        if got != Some(i) {
            return Err(format!("expected Some({i}), got {got:?}"));
        }
    }
    if h.dequeue().is_some() {
        return Err("queue not empty after drain".into());
    }
    Ok(())
}

/// Queue conservation check, concurrent.
fn check_queue_conservation<Q: ConcurrentQueue<u64>>(
    queue: &Q,
    threads: usize,
) -> Result<(), String> {
    const PER: usize = 2_000;
    let dequeued: Vec<Vec<u64>> = thread::scope(|scope| {
        (0..threads)
            .map(|t| {
                let queue = &queue;
                scope.spawn(move || {
                    let mut h = queue.register();
                    let mut got = Vec::new();
                    for i in 0..PER {
                        h.enqueue((t * PER + i) as u64);
                        if i % 2 == 0 {
                            if let Some(v) = h.dequeue() {
                                got.push(v);
                            }
                        }
                    }
                    got
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|j| j.join().unwrap())
            .collect()
    });
    let mut seen = HashSet::new();
    for v in dequeued.into_iter().flatten() {
        if !seen.insert(v) {
            return Err(format!("value {v} dequeued twice"));
        }
    }
    let mut h = queue.register();
    while let Some(v) = h.dequeue() {
        if !seen.insert(v) {
            return Err(format!("value {v} dequeued twice in drain"));
        }
    }
    if seen.len() != threads * PER {
        return Err(format!(
            "lost values: {} of {} accounted",
            seen.len(),
            threads * PER
        ));
    }
    Ok(())
}

fn report(name: &str, what: &str, r: Result<(), String>, failures: &mut u32) {
    match r {
        Ok(()) => println!("  PASS  {name:<6} {what}"),
        Err(e) => {
            println!("  FAIL  {name:<6} {what}: {e}");
            *failures += 1;
        }
    }
}

fn main() {
    const THREADS: usize = 8;
    let mut failures = 0u32;
    println!("validating all stack implementations ({THREADS} threads)...");

    macro_rules! validate {
        ($name:expr, $make:expr) => {{
            let s = $make;
            report($name, "sequential LIFO", check_lifo(&s), &mut failures);
            let s = $make;
            report(
                $name,
                "concurrent conservation",
                check_conservation(&s, THREADS),
                &mut failures,
            );
        }};
    }

    validate!(
        "SEC",
        SecStack::<u64>::with_config(SecConfig::new(2, THREADS + 1))
    );
    validate!("TRB", TreiberStack::<u64>::new(THREADS + 1));
    validate!("EB", EbStack::<u64>::new(THREADS + 1));
    validate!("FC", FcStack::<u64>::new(THREADS + 1));
    validate!("CC", CcStack::<u64>::new(THREADS + 1));
    validate!("TSI", TsiStack::<u64>::new(THREADS + 1));
    validate!("TRB-HP", TreiberHpStack::<u64>::new(THREADS + 1));
    validate!("LCK", LockedStack::<u64>::new(THREADS + 1));

    println!("validating all queue implementations ({THREADS} threads)...");

    macro_rules! validate_queue {
        ($name:expr, $make:expr) => {{
            let q = $make;
            report($name, "sequential FIFO", check_fifo(&q), &mut failures);
            let q = $make;
            report(
                $name,
                "concurrent conservation",
                check_queue_conservation(&q, THREADS),
                &mut failures,
            );
        }};
    }

    validate_queue!("SEC-Q", SecQueue::<u64>::new(THREADS + 1));
    validate_queue!(
        "SEC-Q0",
        SecQueue::<u64>::new(THREADS + 1).rendezvous_spins(0)
    );
    validate_queue!("MS", MsQueue::<u64>::new(THREADS + 1));
    validate_queue!("LCK-Q", LockedQueue::<u64>::new(THREADS + 1));

    // SEC accounting identity under load.
    {
        let s: SecStack<u64> = SecStack::with_config(SecConfig::new(2, THREADS + 1));
        let _ = check_conservation(&s, THREADS);
        let r = s.stats().report();
        report(
            "SEC",
            "batch accounting identity",
            if r.eliminated + r.combined == r.ops {
                Ok(())
            } else {
                Err(format!("{r:?}"))
            },
            &mut failures,
        );
    }

    if failures == 0 {
        println!("all validations passed");
    } else {
        println!("{failures} validation(s) FAILED");
        std::process::exit(1);
    }
}
