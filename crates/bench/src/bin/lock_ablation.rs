//! Ablation: lock discipline under combining-style critical sections.
//!
//! The combining stacks (FC, CC) are, mechanically, "a lock plus a rule
//! for what the holder does". This binary isolates the *lock* half: all
//! four disciplines in the substrate — `std::sync::Mutex`, TTAS, MCS,
//! CLH — guard the same sequential `Vec` stack, and each thread performs
//! one push+pop pair per acquisition. Two readings:
//!
//! * the gap between any lock here and FC/CC in `fig2` is the value of
//!   *combining* (many ops per handoff vs one), and
//! * the gap between TTAS and the queue locks at high thread counts is
//!   the handoff-discipline effect CC-Synch inherits from MCS.
//!
//! ```text
//! cargo run -p sec-bench --release --bin lock_ablation
//! ```

use sec_bench::BenchOpts;
use sec_sync::{ClhLock, McsLock, TtasLock};
use sec_workload::stats::Summary;
use sec_workload::table::Figure;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Barrier, Mutex};
use std::time::Instant;

/// Runs `threads` workers hammering `op` for `opts.duration`; returns
/// Mops/s (one op = one push+pop pair).
fn measure(opts: &BenchOpts, threads: usize, op: impl Fn(usize) + Sync) -> f64 {
    let barrier = Barrier::new(threads + 1);
    let stop = AtomicBool::new(false);
    let total: u64 = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let barrier = &barrier;
                let stop = &stop;
                let op = &op;
                scope.spawn(move || {
                    barrier.wait();
                    let mut n = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        for _ in 0..32 {
                            op(t);
                        }
                        n += 64; // each round trip is a push and a pop
                    }
                    n
                })
            })
            .collect();
        barrier.wait();
        let start = Instant::now();
        std::thread::sleep(opts.duration);
        stop.store(true, Ordering::Relaxed);
        let sum = handles.into_iter().map(|h| h.join().unwrap()).sum();
        let _ = start;
        sum
    });
    total as f64 / opts.duration.as_secs_f64() / 1e6
}

fn averaged(opts: &BenchOpts, threads: usize, op: impl Fn(usize) + Sync) -> f64 {
    let samples: Vec<f64> = (0..opts.runs)
        .map(|_| measure(opts, threads, &op))
        .collect();
    Summary::of(&samples).mean
}

fn main() {
    let opts = BenchOpts::from_args();
    println!(
        "{}",
        opts.banner("Ablation: lock disciplines guarding a sequential stack")
    );
    let sweep = opts.sweep();
    let mut fig = Figure::new("locked push+pop throughput", sweep.clone());

    // std::sync::Mutex (futex-backed; parks waiters).
    let mut ys = Vec::new();
    for &n in &sweep {
        let stack = Mutex::new(Vec::with_capacity(opts.prefill + n));
        ys.push(averaged(&opts, n, |t| {
            let mut s = stack.lock().unwrap();
            s.push(t as u64);
            let _ = s.pop();
        }));
    }
    fig.add_series("mutex", ys);

    // TTAS spin lock (FC's combiner-election primitive).
    let mut ys = Vec::new();
    for &n in &sweep {
        let stack = TtasLock::new(Vec::with_capacity(opts.prefill + n));
        ys.push(averaged(&opts, n, |t| {
            let mut s = stack.lock();
            s.push(t as u64);
            let _ = s.pop();
        }));
    }
    fig.add_series("ttas", ys);

    // MCS queue lock (CC-Synch's ancestor).
    let mut ys = Vec::new();
    for &n in &sweep {
        let stack = McsLock::new(Vec::with_capacity(opts.prefill + n));
        ys.push(averaged(&opts, n, |t| {
            let mut s = stack.lock();
            s.push(t as u64);
            let _ = s.pop();
        }));
    }
    fig.add_series("mcs", ys);

    // CLH queue lock (spin on predecessor).
    let mut ys = Vec::new();
    for &n in &sweep {
        let stack = ClhLock::new(Vec::with_capacity(opts.prefill + n));
        ys.push(averaged(&opts, n, |t| {
            let mut s = stack.lock();
            s.push(t as u64);
            let _ = s.pop();
        }));
    }
    fig.add_series("clh", ys);

    println!("{}", fig.render_table());
    println!(
        "# reading: compare against fig2's FC/CC rows — the difference is combining;\n\
         # compare ttas vs mcs/clh at the sweep's top — the difference is handoff discipline."
    );
    if let Err(e) = fig.write_csv(&opts.csv_dir, "lock_ablation") {
        eprintln!("warning: could not write CSV: {e}");
    }
}
