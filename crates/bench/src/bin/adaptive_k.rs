//! Elastic-sharding ablation (DESIGN.md §8, EXPERIMENTS.md §adaptive):
//! at every swept thread count, SEC with elastic `K ∈ [1, 5]` against
//! each static `K = 1..=5` — the question Figure 4 leaves open is
//! whether one *adaptive* stack instance can track the best static
//! setting of every cell without retuning.
//!
//! For each mix the binary prints the Figure-4-style table plus, per
//! thread count: the best static K, the adaptive stack's throughput as
//! a fraction of that best, the active count the monitor settled on,
//! and the grow/shrink transition counters (so a "flat" result is
//! distinguishable from a monitor that never moved). The summary line
//! reports the worst-case fraction over the sweep — the acceptance
//! target is ≥ 95% (within 5% of the best static K everywhere).
//!
//! ```text
//! cargo run -p sec-bench --release --bin adaptive_k
//! cargo run -p sec-bench --release --bin adaptive_k -- --duration-ms 1000 --runs 3
//! ```

use sec_bench::BenchOpts;
use sec_workload::stats::{ResizeTotals, Summary};
use sec_workload::table::Figure;
use sec_workload::{run_algo, Algo, Mix, RunConfig};

const MIN_K: usize = 1;
const MAX_K: usize = 5;

/// Mean throughput of `algo` in one sweep cell, the last run's active
/// aggregator count, and the resize counters summed over all runs of
/// the cell (the totals reach the CSV as extra columns).
fn cell(
    algo: Algo,
    threads: usize,
    opts: &BenchOpts,
    mix: Mix,
) -> (f64, Option<usize>, ResizeTotals) {
    let cfg = RunConfig {
        duration: opts.duration,
        prefill: opts.prefill,
        ..RunConfig::new(threads, mix)
    };
    let mut active_k = None;
    let mut resizes = ResizeTotals::new();
    let samples: Vec<f64> = (0..opts.runs)
        .map(|r| {
            let cfg = RunConfig {
                seed: cfg.seed ^ (r as u64) << 32,
                ..cfg
            };
            let out = run_algo(algo, &cfg);
            if let Some(active) = out.sec_active {
                active_k = Some(active);
            }
            resizes.add(out.sec_report.as_ref());
            out.result.mops()
        })
        .collect();
    (Summary::of(&samples).mean, active_k, resizes)
}

fn main() {
    let opts = BenchOpts::from_args();
    println!(
        "{}",
        opts.banner("Elastic sharding ablation: adaptive K vs best static K")
    );
    let sweep = opts.sweep();
    let mut worst_overall: Option<(f64, Mix, usize)> = None;

    for mix in [Mix::UPDATE_100, Mix::UPDATE_50, Mix::PUSH_ONLY] {
        let mut fig = Figure::new(format!("adaptive_k — {mix}"), sweep.clone());
        // Static lineup.
        let mut static_rows: Vec<Vec<f64>> = Vec::new();
        for k in MIN_K..=MAX_K {
            let algo = Algo::Sec { aggregators: k };
            let ys: Vec<f64> = sweep.iter().map(|&n| cell(algo, n, &opts, mix).0).collect();
            fig.add_series(algo.ablation_label(), ys.clone());
            static_rows.push(ys);
        }
        // Elastic series.
        let adaptive = Algo::SecAdaptive {
            min_k: MIN_K,
            max_k: MAX_K,
        };
        let mut ada_ys = Vec::with_capacity(sweep.len());
        let mut ada_info = Vec::with_capacity(sweep.len());
        for &n in &sweep {
            let (mops, active, resizes) = cell(adaptive, n, &opts, mix);
            ada_ys.push(mops);
            ada_info.push((active.unwrap_or(0), resizes));
        }
        fig.add_series(adaptive.label(), ada_ys.clone());
        // The resize counters ride along as unplotted CSV columns
        // (summed over the cell's runs).
        fig.add_extra(
            format!("{}_grows", adaptive.label()),
            ada_info.iter().map(|(_, r)| r.grows as f64).collect(),
        );
        fig.add_extra(
            format!("{}_shrinks", adaptive.label()),
            ada_info.iter().map(|(_, r)| r.shrinks as f64).collect(),
        );

        println!("{}", fig.render_table());
        println!("{}", fig.render_ascii_plot(12));
        if let Err(e) = fig.write_csv(&opts.csv_dir, &format!("adaptive_k_{}", mix_stem(mix))) {
            eprintln!("warning: could not write CSV: {e}");
        }

        println!(
            "{:>8} {:>10} {:>10} {:>9} {:>9} {:>14}",
            "threads", "best K", "best Mops", "ada/best", "active", "grows/shrinks"
        );
        for (i, &n) in sweep.iter().enumerate() {
            let (best_k, best) = static_rows
                .iter()
                .enumerate()
                .map(|(j, ys)| (MIN_K + j, ys[i]))
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .expect("non-empty static lineup");
            let frac = if best > 0.0 { ada_ys[i] / best } else { 1.0 };
            let (active, resizes) = ada_info[i];
            println!(
                "{n:>8} {best_k:>10} {best:>10.3} {frac:>8.1}% {active:>9} {:>14}",
                format!("{}/{}", resizes.grows, resizes.shrinks),
                frac = 100.0 * frac,
            );
            if worst_overall.is_none_or(|(w, _, _)| frac < w) {
                worst_overall = Some((frac, mix, n));
            }
        }
        println!();
    }

    if let Some((frac, mix, n)) = worst_overall {
        let verdict = if frac >= 0.95 { "PASS" } else { "WARN" };
        println!(
            "{verdict}: adaptive worst case {:.1}% of best static K \
             (at {n} threads, {mix}; target >= 95%)",
            100.0 * frac
        );
    }
}

fn mix_stem(mix: Mix) -> &'static str {
    match mix {
        Mix::UPDATE_100 => "upd100",
        Mix::UPDATE_50 => "upd50",
        Mix::PUSH_ONLY => "push_only",
        _ => "mix",
    }
}
