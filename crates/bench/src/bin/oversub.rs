//! The oversubscription ablation: throughput of the SEC stack and the
//! SEC queue at 1×, 2×, 4× and 8× the host's hardware threads, under
//! each of the three [`WaitPolicy`] settings (DESIGN.md §11).
//!
//! This is the experiment the wait subsystem exists for: with threads ≤
//! cores the three policies are near-indistinguishable (waits resolve
//! inside the spin phase), but once threads exceed cores, spinning
//! waiters steal the cycles their freezers/combiners need and yielding
//! waiters keep the run queue full of threads with nothing to do —
//! `SpinThenPark` removes them from scheduling entirely and pays one
//! `unpark` per registered waiter of the batch.
//!
//! ```text
//! cargo run -p sec-bench --release --bin oversub
//! cargo run -p sec-bench --release --bin oversub -- --duration-ms 1000 --runs 5
//! ```
//!
//! Prints one table + ASCII plot per family and writes
//! `results/oversub_{stack,queue}.csv`; each policy series carries its
//! park/wake/spurious counter columns
//! (`<series>_{parks,wakes,spurious}`), mirroring the resize- and
//! recycle-counter exports of `fig4`/`queue_bench` — like those, the
//! counter columns are **totals summed over the cell's `--runs`**
//! (the per-run means are printed on the progress lines). Each policy
//! series also carries per-cell latency percentile columns
//! (`<series>_{p50,p99,p999}_ns`, from one fixed-work latency pass per
//! cell): the throughput rows say how much work got done, the tail
//! columns say what each wait policy cost the ops that had to wait.

use sec_bench::BenchOpts;
use sec_core::{SecConfig, SecQueue, SecStack, WaitPolicy};
use sec_sync::topology;
use sec_workload::stats::{Summary, WaitTotals};
use sec_workload::table::Figure;
use sec_workload::{
    measure_latency, measure_queue_latency, run_algo, Algo, LatencyReport, Mix, RunConfig,
};

/// One fixed-work latency pass for a (family, policy, threads) cell.
fn cell_latency(algo: Algo, policy: WaitPolicy, threads: usize, ops: u64) -> LatencyReport {
    let cap = threads + 1;
    match algo {
        Algo::SecQueue => {
            let queue: SecQueue<u64> = SecQueue::new(cap).wait_policy(policy);
            measure_queue_latency(&queue, threads, ops, Mix::UPDATE_100)
        }
        _ => {
            let stack: SecStack<u64> =
                SecStack::with_config(SecConfig::new(2, cap).wait_policy(policy));
            measure_latency(&stack, threads, ops, Mix::UPDATE_100)
        }
    }
}

/// The swept wait policies, with the series labels used in the CSVs.
const POLICIES: [WaitPolicy; 3] = [
    WaitPolicy::Spin,
    WaitPolicy::SpinThenYield,
    WaitPolicy::spin_then_park(),
];

fn main() {
    let opts = BenchOpts::from_args();
    let hw = topology::hardware_threads().max(1);
    println!(
        "{}",
        opts.banner(&format!(
            "Oversubscription: wait policies at 1x/2x/4x/8x of {hw} hardware threads"
        ))
    );
    // The oversubscription sweep is the point of this binary: by
    // default it is derived from the host (1x/2x/4x/8x the hardware
    // threads), not from --max-threads; an explicit --threads list
    // still wins for deeper probes.
    let sweep: Vec<usize> = opts
        .threads_list
        .clone()
        .unwrap_or_else(|| vec![hw, 2 * hw, 4 * hw, 8 * hw]);

    for (algo, family, stem) in [
        (Algo::Sec { aggregators: 2 }, "SecStack", "oversub_stack"),
        (Algo::SecQueue, "SecQueue", "oversub_queue"),
    ] {
        let mut fig = Figure::new(
            format!(
                "{family} throughput vs oversubscription — {}",
                Mix::UPDATE_100
            ),
            sweep.clone(),
        );
        // Interleave the policies *inside* each (thread count, run)
        // slice rather than measuring each policy as one contiguous
        // block: environmental drift (a noisy co-tenant, thermal
        // throttling) then biases all three policies equally instead
        // of poisoning whole series — on loaded hosts that drift is
        // larger than the effect under measurement.
        let mut samples = vec![vec![Vec::with_capacity(opts.runs); sweep.len()]; POLICIES.len()];
        let mut waits = vec![vec![WaitTotals::new(); sweep.len()]; POLICIES.len()];
        for r in 0..opts.runs {
            for (ti, &threads) in sweep.iter().enumerate() {
                for (pi, policy) in POLICIES.into_iter().enumerate() {
                    let cfg = RunConfig {
                        duration: opts.duration,
                        prefill: opts.prefill,
                        wait: Some(policy),
                        seed: 0xC0FFEE ^ (r as u64) << 32,
                        ..RunConfig::new(threads, Mix::UPDATE_100)
                    };
                    let out = run_algo(algo, &cfg);
                    waits[pi][ti].add(out.sec_report.as_ref());
                    samples[pi][ti].push(out.result.mops());
                }
            }
        }
        let mut extras: Vec<(String, Vec<f64>)> = Vec::new();
        for (pi, policy) in POLICIES.into_iter().enumerate() {
            let label = format!("{}_{}", algo.label(), policy.label());
            let mut ys = Vec::with_capacity(sweep.len());
            for (ti, &threads) in sweep.iter().enumerate() {
                let s = Summary::of(&samples[pi][ti]);
                eprintln!(
                    "  {family} | {:>6} | {threads:>3} threads ({:.0}x): {:.3} Mops/s (cv {:.1}%, {:.0} parks/run, {:.1}% spurious)",
                    policy.label(),
                    threads as f64 / hw as f64,
                    s.mean,
                    s.cv_pct(),
                    waits[pi][ti].parks_per_run(),
                    waits[pi][ti].spurious_pct(),
                );
                ys.push(s.mean);
            }
            fig.add_series(label.clone(), ys);
            // The tail view: one latency pass per cell, after the
            // throughput runs so it cannot perturb them.
            let mut p50s = Vec::with_capacity(sweep.len());
            let mut p99s = Vec::with_capacity(sweep.len());
            let mut p999s = Vec::with_capacity(sweep.len());
            for &threads in &sweep {
                let r = cell_latency(algo, policy, threads, 2_000);
                p50s.push(r.p50 as f64);
                p99s.push(r.p99 as f64);
                p999s.push(r.p999 as f64);
            }
            extras.push((format!("{label}_p50_ns"), p50s));
            extras.push((format!("{label}_p99_ns"), p99s));
            extras.push((format!("{label}_p999_ns"), p999s));
            extras.push((
                format!("{label}_parks"),
                waits[pi].iter().map(|w| w.parks as f64).collect(),
            ));
            extras.push((
                format!("{label}_wakes"),
                waits[pi].iter().map(|w| w.wakes as f64).collect(),
            ));
            extras.push((
                format!("{label}_spurious"),
                waits[pi].iter().map(|w| w.spurious as f64).collect(),
            ));
        }
        for (name, col) in extras {
            fig.add_extra(name, col);
        }
        println!("{}", fig.render_table());
        println!("{}", fig.render_ascii_plot(12));
        if let Err(e) = fig.write_csv(&opts.csv_dir, stem) {
            eprintln!("warning: could not write CSV: {e}");
        }
    }
}
