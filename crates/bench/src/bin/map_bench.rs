//! The map family's evaluation: SEC-M (the batched-combining hash map
//! of DESIGN.md §13) against the locked-`HashMap` floor, across the
//! standard thread sweep and the uniform-vs-zipfian × read-heavy /
//! write-heavy grid (the YCSB-style axes for keyed workloads).
//!
//! ```text
//! cargo run -p sec-bench --release --bin map_bench
//! cargo run -p sec-bench --release --bin map_bench -- --duration-ms 5000 --runs 5
//! ```
//!
//! Prints one table + ASCII plot per cell of the grid and writes
//! `results/map_{uniform,zipf}_{read,write}.csv`. Each CSV carries,
//! beyond the throughput series, SEC-M's per-cell batching columns
//! (batching degree, combiner CAS failures — structurally zero for the
//! map, whose combiners mutate under bucket locks) plus the grow/shrink
//! resize counters and the node-recycling counter block (hit %, misses,
//! overflows — DESIGN.md §10).
//!
//! The resize columns are the interesting ones: SEC-M runs under an
//! elastic policy here, and the zipfian workload concentrates its key
//! mass on one shard — whose crowded batches vote the active count up —
//! while the uniform workload spreads announcements too thin for any
//! shard to reach the grow threshold.

use sec_bench::BenchOpts;
use sec_core::AggregatorPolicy;
use sec_workload::stats::{DegreeTotals, ReclaimTotals, ResizeTotals, Summary};
use sec_workload::table::Figure;
use sec_workload::{run_algo, Algo, KeyDist, MapMix, Mix, RunConfig, MAP_LINEUP};

fn main() {
    let opts = BenchOpts::from_args();
    println!(
        "{}",
        opts.banner("Map bench: SEC-M vs LCK-M, {uniform,zipfian} x {read,write}-heavy")
    );
    let sweep = opts.sweep();

    let uniform = KeyDist::Uniform { keys: 1024 };
    let zipf = KeyDist::Zipfian {
        keys: 1024,
        theta: 3.0,
    };
    for (dist, map_mix, stem) in [
        (uniform, MapMix::READ_HEAVY, "map_uniform_read"),
        (uniform, MapMix::WRITE_HEAVY, "map_uniform_write"),
        (zipf, MapMix::READ_HEAVY, "map_zipf_read"),
        (zipf, MapMix::WRITE_HEAVY, "map_zipf_write"),
    ] {
        let mut fig = Figure::new(format!("Map throughput — {dist}, {map_mix}"), sweep.clone());
        for algo in MAP_LINEUP {
            let mut ys = Vec::with_capacity(sweep.len());
            let mut degrees = Vec::with_capacity(sweep.len());
            let mut cas_fails = Vec::with_capacity(sweep.len());
            let mut resize_cols: Vec<ResizeTotals> = Vec::with_capacity(sweep.len());
            let mut recycle_cols: Vec<ReclaimTotals> = Vec::with_capacity(sweep.len());
            let mut degree_cols: Vec<DegreeTotals> = Vec::with_capacity(sweep.len());
            for &threads in &sweep {
                let cfg = RunConfig {
                    duration: opts.duration,
                    prefill: opts.prefill,
                    map_mix,
                    key_dist: dist,
                    // Elastic across the shard range: the key
                    // distribution, not the construction-time K, decides
                    // how many shards stay active (DESIGN.md §8, §13).
                    // min_k = 3, not 2: a two-way split is too coarse to
                    // tell the distributions apart on a small host (both
                    // halves stay crowded), while from three shards up
                    // evenly spread announcements dilute per shard but
                    // the zipfian hot keys' shard keeps its whole mass.
                    sec_policy: Some(AggregatorPolicy::Adaptive {
                        min_k: 3,
                        max_k: 6,
                        window: 2048,
                    }),
                    // Provision registration capacity for peak load
                    // (~2.3x the worker count plus a spare pool), as a
                    // deployment sized for a worst-case fan-in would.
                    // The monitor's per-shard share is capacity / active
                    // (DESIGN.md §8), and this curve puts the grow
                    // threshold (half the share) between the two
                    // workloads' min_k batching degrees: evenly spread
                    // announcements stay under it, while the crowded
                    // shard serving the zipfian hot keys clears it and
                    // votes the active count up. Below 4 threads keep
                    // the tight default — there the share guard
                    // disables resizing for any input.
                    sec_capacity: (threads >= 4).then_some(7 * threads / 3 + 6),
                    ..RunConfig::new(threads, Mix::UPDATE_100)
                };
                let mut resizes = ResizeTotals::new();
                let mut recycle = ReclaimTotals::new();
                let mut degree_dist = DegreeTotals::new();
                let mut degree_sum = 0.0;
                let mut cas_sum = 0u64;
                let samples: Vec<f64> = (0..opts.runs)
                    .map(|r| {
                        let cfg = RunConfig {
                            seed: cfg.seed ^ (r as u64) << 32,
                            ..cfg
                        };
                        let out = run_algo(algo, &cfg);
                        if let Some(rep) = &out.sec_report {
                            degree_sum += rep.batching_degree();
                            cas_sum += rep.cas_failures;
                        }
                        resizes.add(out.sec_report.as_ref());
                        recycle.add(out.reclaim.as_ref());
                        degree_dist.add(out.sec_report.as_ref());
                        out.result.mops()
                    })
                    .collect();
                let s = Summary::of(&samples);
                eprintln!(
                    "  {dist} {map_mix} | {:>6} | {threads:>3} threads: {:.3} Mops/s (cv {:.1}%)",
                    algo.label(),
                    s.mean,
                    s.cv_pct()
                );
                ys.push(s.mean);
                degrees.push(degree_sum / opts.runs.max(1) as f64);
                cas_fails.push(cas_sum as f64);
                resize_cols.push(resizes);
                recycle_cols.push(recycle);
                degree_cols.push(degree_dist);
            }
            fig.add_series(algo.label(), ys);
            // SEC-M is the only map with a batch layer: its counter
            // block rides along as unplotted CSV columns.
            if algo == Algo::SecMap {
                fig.add_extra(format!("{}_batch_degree", algo.label()), degrees);
                // The degree *distribution* (sec-trace's per-batch
                // histogram): the mean above says how much combining
                // happened, min/p50/p99/max say how it was shaped.
                fig.add_extra(
                    format!("{}_degree_min", algo.label()),
                    degree_cols.iter().map(|d| d.min as f64).collect(),
                );
                fig.add_extra(
                    format!("{}_degree_p50", algo.label()),
                    degree_cols.iter().map(|d| d.p50_mean()).collect(),
                );
                fig.add_extra(
                    format!("{}_degree_p99", algo.label()),
                    degree_cols.iter().map(|d| d.p99_mean()).collect(),
                );
                fig.add_extra(
                    format!("{}_degree_max", algo.label()),
                    degree_cols.iter().map(|d| d.max as f64).collect(),
                );
                fig.add_extra(format!("{}_cas_failures", algo.label()), cas_fails);
                fig.add_extra(
                    format!("{}_grows", algo.label()),
                    resize_cols.iter().map(|r| r.grows as f64).collect(),
                );
                fig.add_extra(
                    format!("{}_shrinks", algo.label()),
                    resize_cols.iter().map(|r| r.shrinks as f64).collect(),
                );
                fig.add_extra(
                    format!("{}_recycle_hit_pct", algo.label()),
                    recycle_cols.iter().map(|r| r.hit_pct()).collect(),
                );
                fig.add_extra(
                    format!("{}_recycle_misses", algo.label()),
                    recycle_cols.iter().map(|r| r.misses as f64).collect(),
                );
                fig.add_extra(
                    format!("{}_recycle_overflows", algo.label()),
                    recycle_cols.iter().map(|r| r.overflows as f64).collect(),
                );
            }
        }
        println!("{}", fig.render_table());
        println!("{}", fig.render_ascii_plot(12));
        if let Err(e) = fig.write_csv(&opts.csv_dir, stem) {
            eprintln!("warning: could not write CSV: {e}");
        }
    }
}
