//! The whole SEC family on one axis: the stack (fixed and adaptive K),
//! the queue, the fetch-add counter and the hash map, all running on
//! the same generic combining engine (DESIGN.md §12), swept across the
//! standard thread counts under their update-heavy workloads.
//!
//! ```text
//! cargo run -p sec-bench --release --bin families
//! cargo run -p sec-bench --release --bin families -- --duration-ms 5000 --runs 5
//! ```
//!
//! Absolute throughputs are not comparable across rows — a counter op
//! is a dozen instructions, a map op hashes and walks a bucket — but
//! the *scaling shape* is: every family inherits the same batching,
//! waiting and recycling machinery, so they should degrade the same
//! way as threads exceed cores. Each family's batching degree rides
//! along as an unplotted CSV column, the accounting view of the same
//! claim. Writes `results/families.csv` plus the machine-readable
//! `results/BENCH_families.json` (throughput mean/cv and p99 latency
//! per family per thread count) for trend tracking across commits.

use sec_bench::BenchOpts;
use sec_core::counter::SecCounter;
use sec_core::{SecConfig, SecMap, SecQueue, SecStack};
use sec_workload::stats::Summary;
use sec_workload::table::Figure;
use sec_workload::{
    measure_counter_latency, measure_latency, measure_map_latency, measure_queue_latency, run_algo,
    Algo, KeyDist, LatencyReport, MapMix, Mix, RunConfig, SEC_FAMILIES,
};

/// One fixed-work latency measurement for a SEC-family algorithm (the
/// sibling of the `latency` binary's dispatch, restricted to the
/// [`SEC_FAMILIES`] lineup this binary sweeps).
fn family_latency(algo: Algo, threads: usize, ops: u64) -> LatencyReport {
    let cap = threads + 1;
    let mix = Mix::UPDATE_100;
    match algo {
        Algo::Sec { aggregators } => measure_latency(
            &SecStack::<u64>::with_config(SecConfig::new(aggregators, cap)),
            threads,
            ops,
            mix,
        ),
        Algo::SecAdaptive { min_k, max_k } => measure_latency(
            &SecStack::<u64>::with_config(SecConfig::adaptive(min_k, max_k, cap)),
            threads,
            ops,
            mix,
        ),
        Algo::SecQueue => measure_queue_latency(&SecQueue::<u64>::new(cap), threads, ops, mix),
        Algo::SecCounter => measure_counter_latency(
            &SecCounter::with_config(SecConfig::new(2, cap)),
            threads,
            ops,
            mix,
        ),
        Algo::SecMap => measure_map_latency(
            &SecMap::<u64, u64>::with_config(SecConfig::new(2, cap)),
            threads,
            ops,
            MapMix::WRITE_HEAVY,
            KeyDist::Uniform { keys: 1024 },
        ),
        other => unreachable!("not a SEC family: {other}"),
    }
}

/// One (threads, throughput, p99) sample point of a family's sweep.
struct Point {
    threads: usize,
    mops_mean: f64,
    cv_pct: f64,
    p99_ns: u64,
}

/// Hand-rolled JSON encoding of the sweep (the workspace carries no
/// serde; the schema is flat enough that formatting by hand is the
/// smaller liability).
fn families_json(opts: &BenchOpts, sweep: &[usize], families: &[(String, Vec<Point>)]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"families\",\n");
    out.push_str("  \"mix\": \"upd100\",\n");
    out.push_str(&format!("  \"runs\": {},\n", opts.runs));
    out.push_str(&format!(
        "  \"duration_ms\": {},\n",
        opts.duration.as_millis()
    ));
    out.push_str(&format!(
        "  \"threads\": [{}],\n",
        sweep
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str("  \"families\": [\n");
    for (i, (name, points)) in families.iter().enumerate() {
        out.push_str(&format!("    {{\"name\": \"{name}\", \"points\": [\n"));
        for (j, p) in points.iter().enumerate() {
            out.push_str(&format!(
                "      {{\"threads\": {}, \"mops_mean\": {:.4}, \"cv_pct\": {:.2}, \"p99_ns\": {}}}{}\n",
                p.threads,
                p.mops_mean,
                p.cv_pct,
                p.p99_ns,
                if j + 1 < points.len() { "," } else { "" }
            ));
        }
        out.push_str(&format!(
            "    ]}}{}\n",
            if i + 1 < families.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let opts = BenchOpts::from_args();
    println!(
        "{}",
        opts.banner("SEC families: stack, adaptive stack, queue, counter, map")
    );
    let sweep = opts.sweep();
    let latency_ops_per_thread = 2_000u64;

    let mut fig = Figure::new(
        "SEC family throughput — update-heavy workloads".to_string(),
        sweep.clone(),
    );
    let mut json_families: Vec<(String, Vec<Point>)> = Vec::with_capacity(SEC_FAMILIES.len());
    for algo in SEC_FAMILIES {
        let mut ys = Vec::with_capacity(sweep.len());
        let mut degrees = Vec::with_capacity(sweep.len());
        let mut p99s = Vec::with_capacity(sweep.len());
        let mut points = Vec::with_capacity(sweep.len());
        for &threads in &sweep {
            let cfg = RunConfig {
                duration: opts.duration,
                prefill: opts.prefill,
                // The map family reads its own mix/distribution fields;
                // the stack, queue and counter read `mix`. Update-heavy
                // everywhere so every op enters a batch.
                map_mix: sec_workload::MapMix::WRITE_HEAVY,
                ..RunConfig::new(threads, Mix::UPDATE_100)
            };
            let mut degree_sum = 0.0;
            let samples: Vec<f64> = (0..opts.runs)
                .map(|r| {
                    let cfg = RunConfig {
                        seed: cfg.seed ^ (r as u64) << 32,
                        ..cfg
                    };
                    let out = run_algo(algo, &cfg);
                    if let Some(rep) = &out.sec_report {
                        degree_sum += rep.batching_degree();
                    }
                    out.result.mops()
                })
                .collect();
            let s = Summary::of(&samples);
            // One fixed-work latency pass per cell feeds the p99 column
            // of the JSON drop (the histogram behind it is the same
            // HDR layout the engine's phase histograms use).
            let lat = family_latency(algo, threads, latency_ops_per_thread);
            eprintln!(
                "  {:>7} | {threads:>3} threads: {:.3} Mops/s (cv {:.1}%), p99 {} ns",
                algo.label(),
                s.mean,
                s.cv_pct(),
                lat.p99
            );
            ys.push(s.mean);
            degrees.push(degree_sum / opts.runs.max(1) as f64);
            p99s.push(lat.p99 as f64);
            points.push(Point {
                threads,
                mops_mean: s.mean,
                cv_pct: s.cv_pct(),
                p99_ns: lat.p99,
            });
        }
        fig.add_series(algo.label(), ys);
        fig.add_extra(format!("{}_batch_degree", algo.label()), degrees);
        fig.add_extra(format!("{}_p99_ns", algo.label()), p99s);
        json_families.push((algo.label(), points));
    }
    println!("{}", fig.render_table());
    println!("{}", fig.render_ascii_plot(12));
    if let Err(e) = fig.write_csv(&opts.csv_dir, "families") {
        eprintln!("warning: could not write CSV: {e}");
    }
    let json = families_json(&opts, &sweep, &json_families);
    let _ = std::fs::create_dir_all(&opts.csv_dir);
    // Both drops carry the same payload: results/ for the artifact
    // bundle, the repo root so trend tooling finds every BENCH_* file
    // in one place without knowing each binary's --csv dir.
    for path in [
        opts.csv_dir.join("BENCH_families.json"),
        std::path::PathBuf::from("BENCH_families.json"),
    ] {
        match std::fs::write(&path, &json) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
        }
    }
}
