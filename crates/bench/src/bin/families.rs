//! The whole SEC family on one axis: the stack (fixed and adaptive K),
//! the queue, the fetch-add counter and the hash map, all running on
//! the same generic combining engine (DESIGN.md §12), swept across the
//! standard thread counts under their update-heavy workloads.
//!
//! ```text
//! cargo run -p sec-bench --release --bin families
//! cargo run -p sec-bench --release --bin families -- --duration-ms 5000 --runs 5
//! ```
//!
//! Absolute throughputs are not comparable across rows — a counter op
//! is a dozen instructions, a map op hashes and walks a bucket — but
//! the *scaling shape* is: every family inherits the same batching,
//! waiting and recycling machinery, so they should degrade the same
//! way as threads exceed cores. Each family's batching degree rides
//! along as an unplotted CSV column, the accounting view of the same
//! claim. Writes `results/families.csv`.

use sec_bench::BenchOpts;
use sec_workload::stats::Summary;
use sec_workload::table::Figure;
use sec_workload::{run_algo, Mix, RunConfig, SEC_FAMILIES};

fn main() {
    let opts = BenchOpts::from_args();
    println!(
        "{}",
        opts.banner("SEC families: stack, adaptive stack, queue, counter, map")
    );
    let sweep = opts.sweep();

    let mut fig = Figure::new(
        "SEC family throughput — update-heavy workloads".to_string(),
        sweep.clone(),
    );
    for algo in SEC_FAMILIES {
        let mut ys = Vec::with_capacity(sweep.len());
        let mut degrees = Vec::with_capacity(sweep.len());
        for &threads in &sweep {
            let cfg = RunConfig {
                duration: opts.duration,
                prefill: opts.prefill,
                // The map family reads its own mix/distribution fields;
                // the stack, queue and counter read `mix`. Update-heavy
                // everywhere so every op enters a batch.
                map_mix: sec_workload::MapMix::WRITE_HEAVY,
                ..RunConfig::new(threads, Mix::UPDATE_100)
            };
            let mut degree_sum = 0.0;
            let samples: Vec<f64> = (0..opts.runs)
                .map(|r| {
                    let cfg = RunConfig {
                        seed: cfg.seed ^ (r as u64) << 32,
                        ..cfg
                    };
                    let out = run_algo(algo, &cfg);
                    if let Some(rep) = &out.sec_report {
                        degree_sum += rep.batching_degree();
                    }
                    out.result.mops()
                })
                .collect();
            let s = Summary::of(&samples);
            eprintln!(
                "  {:>7} | {threads:>3} threads: {:.3} Mops/s (cv {:.1}%)",
                algo.label(),
                s.mean,
                s.cv_pct()
            );
            ys.push(s.mean);
            degrees.push(degree_sum / opts.runs.max(1) as f64);
        }
        fig.add_series(algo.label(), ys);
        fig.add_extra(format!("{}_batch_degree", algo.label()), degrees);
    }
    println!("{}", fig.render_table());
    println!("{}", fig.render_ascii_plot(12));
    if let Err(e) = fig.write_csv(&opts.csv_dir, "families") {
        eprintln!("warning: could not write CSV: {e}");
    }
}
