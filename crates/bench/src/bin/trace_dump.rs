//! Capture a sec-trace recording of the combining engine at work and
//! export it as Chrome-trace JSON (DESIGN.md §14).
//!
//! Runs a 4-thread zipfian write-heavy workload against an elastic
//! [`SecMap`] with tracing enabled — the regime where every protocol
//! phase fires: crowded shards freeze big batches, waiters park, and
//! the contention monitor grows the active shard count — then:
//!
//!  * writes `results/trace_secmap.json`, loadable in Perfetto /
//!    `chrome://tracing` (freeze→publish batch residency and combine
//!    durations appear as spans, per-op protocol steps as instants),
//!  * prints the four phase histograms' percentiles,
//!  * prints the live rates between two [`TraceSnapshot`]s taken
//!    around the run (the polling view a production consumer gets
//!    without draining any ring).
//!
//! ```text
//! cargo run --release -p sec-bench --features trace --bin trace_dump
//! cargo run --release -p sec-bench --features trace --bin trace_dump -- --duration-ms 1000
//! ```
//!
//! Built without `--features trace` the binary still runs (the
//! `TraceSnapshot` polling path compiles unconditionally) but no
//! recorder exists; it prints the rebuild hint and exits 0.
//!
//! [`SecMap`]: sec_core::SecMap
//! [`TraceSnapshot`]: sec_core::TraceSnapshot

use sec_bench::BenchOpts;
use sec_core::trace::{chrome_trace_json, Histogram};
use sec_core::{AggregatorPolicy, SecConfig, SecMap, TraceConfig};
use sec_workload::{run_map_throughput, KeyDist, MapMix, Mix, RunConfig};

/// One percentile row of the phase-histogram table.
fn print_phase(name: &str, h: &Histogram) {
    if h.is_empty() {
        println!("  {name:<20} (no samples)");
        return;
    }
    println!(
        "  {name:<20} n={:<9} p50={:<8} p90={:<8} p99={:<8} p999={:<8} max={}",
        h.count(),
        h.percentile(50.0),
        h.percentile(90.0),
        h.percentile(99.0),
        h.percentile(99.9),
        h.max(),
    );
}

fn main() {
    let opts = BenchOpts::from_args();
    println!(
        "{}",
        opts.banner("sec-trace capture: 4-thread zipfian SecMap")
    );

    const THREADS: usize = 4;
    let cfg = RunConfig {
        duration: opts.duration,
        prefill: opts.prefill,
        map_mix: MapMix::WRITE_HEAVY,
        key_dist: KeyDist::Zipfian {
            keys: 1024,
            theta: 3.0,
        },
        // Provisioned headroom so the elastic monitor can vote shards
        // up when the zipfian hot keys crowd one (the same sizing rule
        // map_bench documents).
        sec_capacity: Some(7 * THREADS / 3 + 6),
        ..RunConfig::new(THREADS, Mix::UPDATE_100)
    };
    let map: SecMap<u64, u64> = SecMap::with_config(
        SecConfig::new(6, cfg.sec_capacity.unwrap_or(THREADS + 1).max(THREADS + 1))
            .aggregator_policy(AggregatorPolicy::Adaptive {
                min_k: 3,
                max_k: 6,
                window: 2048,
            })
            // Sample 1 in 4 ops: dense enough that the dump shows the
            // per-op protocol steps, cheap enough not to distort the
            // batch shapes being recorded.
            .trace(TraceConfig::on().sample_shift(2).ring_capacity(8192)),
    );

    let before = map.trace_snapshot();
    let result = run_map_throughput(&map, &cfg);
    let after = map.trace_snapshot();

    println!(
        "ran {} ops in {:?} ({:.3} Mops/s)",
        result.ops,
        result.elapsed,
        result.mops()
    );

    // The polling view: counter deltas between two snapshots, no ring
    // access, works with or without the `trace` feature.
    let rates = after.rates_since(&before);
    println!(
        "snapshot rates over {:.3} s: {:.0} ops/s, {:.0} batches/s, {:.0} parks/s, batching degree {:.1}, active shards {}",
        rates.interval_s,
        rates.ops_per_sec,
        rates.batches_per_sec,
        rates.parks_per_sec,
        rates.batching_degree,
        after.active_aggregators,
    );

    let Some(tracer) = map.tracer() else {
        println!(
            "no trace recorder: this binary was built without the `trace` feature.\n\
             rebuild with `cargo run --release -p sec-bench --features trace --bin trace_dump`"
        );
        return;
    };

    println!("phase histograms (ns):");
    print_phase("announce->freeze", tracer.announce_to_freeze());
    print_phase("freeze->publish", tracer.batch_residency());
    print_phase("combine duration", tracer.combine_duration());
    print_phase("op latency", tracer.op_latency());

    let events = tracer.events();
    println!(
        "drained {} events ({} recorded; ring keeps the newest per thread)",
        events.len(),
        tracer.events_recorded()
    );

    let json = chrome_trace_json(&events);
    if let Err(e) = std::fs::create_dir_all(&opts.csv_dir) {
        eprintln!("warning: could not create {}: {e}", opts.csv_dir.display());
        return;
    }
    let path = opts.csv_dir.join("trace_secmap.json");
    match std::fs::write(&path, json) {
        Ok(()) => println!(
            "wrote {} — open in https://ui.perfetto.dev or chrome://tracing",
            path.display()
        ),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}
