//! Open-loop traffic replay against the SecQueue+SecMap service:
//! latency **vs offered load**, not vs thread count.
//!
//! ```text
//! cargo run -p sec-bench --release --bin replay
//! cargo run -p sec-bench --release --bin replay -- --duration-ms 2000 --workers 4
//! cargo run -p sec-bench --release --bin replay -- --trace traces/smoke.trace
//! ```
//!
//! Every other binary here is closed-loop: threads issue the next
//! operation when the previous one returns, so the offered load
//! politely tracks whatever the structure can absorb and overload is
//! invisible. This one replays a timestamped arrival schedule
//! (`sec_workload::openloop`) and charges each request's latency from
//! its *scheduled* arrival — when the service falls behind, the queue
//! grows and the queueing delay lands in the percentiles instead of
//! being coordinated away.
//!
//! For each scenario (steady / bursty / diurnal / multi-tenant, or a
//! `--trace` file) the same base schedule is replayed at a sweep of
//! load multipliers (timestamps compressed by the factor), reporting
//! throughput, p50/p99/p999 latency and SLO-violation windows
//! (fixed windows of scheduled-arrival time whose over-SLO share
//! exceeds 1%). Writes `results/replay.csv`,
//! `results/BENCH_replay.json` and a repo-root `BENCH_replay.json`
//! copy for trend tracking across commits.
//!
//! `--max-slo-violation F` turns the run into a CI gate: any
//! measurement whose violated-window fraction exceeds `F` is marked
//! `FAIL` in the table and the process exits non-zero after the
//! sweep (all rows still run and all outputs are still written).

use sec_workload::openloop::{replay_open_loop, ArrivalTrace, ReplayReport, ServiceConfig};

/// Command-line options (this binary's axes — offered load and
/// workers — differ from the thread-sweep figures, so it parses its
/// own flags rather than borrowing [`sec_bench::BenchOpts`]).
struct ReplayOpts {
    /// Base span of each generated scenario, ms.
    duration_ms: u64,
    /// Worker threads in the replayed service.
    workers: usize,
    /// Load multipliers applied to each base schedule.
    loads: Vec<f64>,
    /// Latency SLO, µs.
    slo_us: u64,
    /// Gate: maximum tolerated violated-window fraction per
    /// measurement (0.0–1.0). Any row above it is marked `FAIL` in
    /// the table and the process exits non-zero — CI-able overload
    /// regression detection.
    max_slo_violation: Option<f64>,
    /// Optional committed trace file replayed instead of the
    /// generated scenarios.
    trace_file: Option<String>,
    /// Output directory for CSV/JSON.
    csv_dir: std::path::PathBuf,
}

impl ReplayOpts {
    fn from_args() -> Self {
        let mut opts = ReplayOpts {
            duration_ms: 400,
            workers: 2,
            loads: vec![0.5, 1.0, 2.0, 4.0],
            slo_us: 1000,
            max_slo_violation: None,
            trace_file: None,
            csv_dir: "results".into(),
        };
        let mut args = std::env::args().skip(1);
        while let Some(flag) = args.next() {
            let mut value = |name: &str| {
                args.next()
                    .unwrap_or_else(|| panic!("missing value for {name}"))
            };
            match flag.as_str() {
                "--duration-ms" => {
                    opts.duration_ms = value("--duration-ms").parse().expect("invalid duration")
                }
                "--workers" => opts.workers = value("--workers").parse().expect("invalid workers"),
                "--loads" => {
                    opts.loads = value("--loads")
                        .split(',')
                        .map(|s| s.trim().parse().expect("invalid --loads list"))
                        .collect();
                    assert!(!opts.loads.is_empty(), "--loads list must not be empty");
                }
                "--slo-us" => opts.slo_us = value("--slo-us").parse().expect("invalid slo"),
                "--max-slo-violation" => {
                    let frac: f64 = value("--max-slo-violation")
                        .parse()
                        .expect("invalid --max-slo-violation");
                    assert!(
                        (0.0..=1.0).contains(&frac),
                        "--max-slo-violation must be a fraction in 0.0..=1.0"
                    );
                    opts.max_slo_violation = Some(frac);
                }
                "--trace" => opts.trace_file = Some(value("--trace")),
                "--csv" => opts.csv_dir = value("--csv").into(),
                "--help" | "-h" => {
                    eprintln!(
                        "options: --duration-ms N  --workers N  --loads A,B,C  --slo-us N  \
                         --max-slo-violation F  --trace FILE  --csv DIR"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown flag {other}; try --help"),
            }
        }
        opts
    }
}

/// One (scenario, load multiplier) measurement.
struct Row {
    scenario: &'static str,
    load: f64,
    rep: ReplayReport,
}

/// The base scenarios, before load scaling. Rates are deliberately
/// laptop-scale at multiplier 1.0 so the default run's interesting
/// part is the upper multipliers.
fn scenarios(opts: &ReplayOpts) -> Vec<(&'static str, ArrivalTrace)> {
    let d = opts.duration_ms;
    if let Some(path) = &opts.trace_file {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read trace {path}: {e}"));
        let trace = ArrivalTrace::parse(&text).unwrap_or_else(|e| panic!("bad trace {path}: {e}"));
        return vec![("file", trace)];
    }
    vec![
        ("steady", ArrivalTrace::steady(60_000.0, d, 0xC0FFEE)),
        (
            "bursty",
            ArrivalTrace::bursty(30_000.0, 300_000.0, 100, 15, d, 0xC0FFEE),
        ),
        (
            "diurnal",
            ArrivalTrace::diurnal(10_000.0, 120_000.0, d.max(2) / 2, d, 0xC0FFEE),
        ),
        (
            "tenants",
            ArrivalTrace::multi_tenant(&[80_000.0, 10_000.0, 10_000.0, 10_000.0], d, 0xC0FFEE),
        ),
    ]
}

/// Hand-rolled JSON encoding of the sweep (the workspace carries no
/// serde; same policy as the `families` binary).
fn replay_json(opts: &ReplayOpts, rows: &[Row]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"replay\",\n");
    out.push_str(&format!("  \"workers\": {},\n", opts.workers));
    out.push_str(&format!("  \"duration_ms\": {},\n", opts.duration_ms));
    out.push_str(&format!("  \"slo_us\": {},\n", opts.slo_us));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"load\": {:.2}, \"offered_per_s\": {:.0}, \
             \"achieved_per_s\": {:.0}, \"p50_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}, \
             \"max_ns\": {}, \"windows\": {}, \"violated_windows\": {}, \
             \"worst_window_frac\": {:.4}}}{}\n",
            r.scenario,
            r.load,
            r.rep.offered_per_s,
            r.rep.achieved_per_s,
            r.rep.latency.p50,
            r.rep.latency.p99,
            r.rep.latency.p999,
            r.rep.latency.max,
            r.rep.windows,
            r.rep.violated_windows,
            r.rep.worst_window_frac,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn replay_csv(rows: &[Row]) -> String {
    let mut out = String::from(
        "scenario,load,offered_per_s,achieved_per_s,p50_ns,p99_ns,p999_ns,max_ns,\
         windows,violated_windows,worst_window_frac\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{},{:.2},{:.0},{:.0},{},{},{},{},{},{},{:.4}\n",
            r.scenario,
            r.load,
            r.rep.offered_per_s,
            r.rep.achieved_per_s,
            r.rep.latency.p50,
            r.rep.latency.p99,
            r.rep.latency.p999,
            r.rep.latency.max,
            r.rep.windows,
            r.rep.violated_windows,
            r.rep.worst_window_frac,
        ));
    }
    out
}

fn main() {
    let opts = ReplayOpts::from_args();
    let cfg = ServiceConfig {
        workers: opts.workers,
        slo_ns: opts.slo_us * 1000,
        ..ServiceConfig::default()
    };
    println!(
        "# open-loop replay: SecQueue+SecMap service, {} workers, SLO {} us\n\
         # latency charged from scheduled arrival (coordinated omission impossible);\n\
         # a violated window is {} ms of arrivals with >{:.0}% over SLO",
        opts.workers,
        opts.slo_us,
        cfg.window_ms,
        cfg.violation_frac * 100.0
    );

    let mut rows = Vec::new();
    let mut gate_failures: Vec<String> = Vec::new();
    for (name, base) in scenarios(&opts) {
        println!(
            "\n== {name}: {} arrivals over {:.0} ms (x1.0 = {:.0}/s) ==",
            base.len(),
            base.span_ns() as f64 / 1e6,
            base.offered_per_s()
        );
        println!(
            "{:>6} | {:>12} {:>12} | {:>9} {:>9} {:>9} | {:>8} {:>10}",
            "load", "offered/s", "achieved/s", "p50 us", "p99 us", "p999 us", "windows", "violated"
        );
        for &load in &opts.loads {
            let trace = base.scaled(load);
            let rep = replay_open_loop(&trace, &cfg, 0x5EED ^ load.to_bits());
            let over_gate = opts
                .max_slo_violation
                .is_some_and(|max| rep.violated_frac() > max);
            println!(
                "{:>6.2} | {:>12.0} {:>12.0} | {:>9.1} {:>9.1} {:>9.1} | {:>8} {:>10}{}",
                load,
                rep.offered_per_s,
                rep.achieved_per_s,
                rep.latency.p50 as f64 / 1e3,
                rep.latency.p99 as f64 / 1e3,
                rep.latency.p999 as f64 / 1e3,
                rep.windows,
                format!(
                    "{} ({:.0}%)",
                    rep.violated_windows,
                    rep.violated_frac() * 100.0
                ),
                if over_gate { "  FAIL" } else { "" },
            );
            if over_gate {
                gate_failures.push(format!(
                    "{name} x{load:.2}: {:.1}% violated windows > gate {:.1}%",
                    rep.violated_frac() * 100.0,
                    opts.max_slo_violation.unwrap() * 100.0
                ));
            }
            rows.push(Row {
                scenario: name,
                load,
                rep,
            });
        }
    }

    let csv = replay_csv(&rows);
    let json = replay_json(&opts, &rows);
    if let Err(e) = std::fs::create_dir_all(&opts.csv_dir) {
        eprintln!("warning: could not create {}: {e}", opts.csv_dir.display());
    }
    for (path, body) in [
        (opts.csv_dir.join("replay.csv"), &csv),
        (opts.csv_dir.join("BENCH_replay.json"), &json),
        // Repo-root copy so trend tooling finds every BENCH_* drop in
        // one place (same policy as BENCH_families.json).
        (std::path::PathBuf::from("BENCH_replay.json"), &json),
    ] {
        match std::fs::write(&path, body) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
        }
    }

    if !gate_failures.is_empty() {
        eprintln!(
            "\nSLO gate FAILED ({} measurement{}):",
            gate_failures.len(),
            if gate_failures.len() == 1 { "" } else { "s" }
        );
        for f in &gate_failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}
