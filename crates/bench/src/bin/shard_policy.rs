//! Ablation: thread-to-aggregator sharding policy (DESIGN.md §7).
//!
//! The paper assigns threads to aggregators in contiguous blocks ("the
//! first aggregator serves the first five threads") and notes "more
//! sophisticated schemes are also possible". The substrate implements
//! both [`ShardPolicy::Block`] and [`ShardPolicy::RoundRobin`]; this
//! binary sweeps them side by side (K = 2 and K = 4) under the
//! update-heavy mix, plus the batching/elimination degrees each policy
//! achieves.
//!
//! On a single-socket host the two policies mostly tie — the policy
//! matters on NUMA machines, where Block keeps an aggregator's threads
//! (typically neighbouring cores) on one node. The degree columns show
//! the mechanism is policy-invariant: elimination depends on *how many*
//! threads share an aggregator, not *which*.
//!
//! ```text
//! cargo run -p sec-bench --release --bin shard_policy
//! ```

use sec_bench::BenchOpts;
use sec_core::{SecConfig, SecStack, ShardPolicy};
use sec_workload::stats::Summary;
use sec_workload::table::Figure;
use sec_workload::{run_throughput, Mix, RunConfig};

fn averaged(
    opts: &BenchOpts,
    threads: usize,
    aggregators: usize,
    policy: ShardPolicy,
) -> (f64, f64) {
    let mut tputs = Vec::new();
    let mut elims = Vec::new();
    for r in 0..opts.runs {
        let stack: SecStack<u64> =
            SecStack::with_config(SecConfig::new(aggregators, threads + 1).shard_policy(policy));
        let cfg = RunConfig {
            duration: opts.duration,
            prefill: opts.prefill,
            seed: 0x5AAD ^ (r as u64) << 24,
            ..RunConfig::new(threads, Mix::UPDATE_100)
        };
        tputs.push(run_throughput(&stack, &cfg).mops());
        elims.push(stack.stats().report().pct_eliminated());
    }
    (Summary::of(&tputs).mean, Summary::of(&elims).mean)
}

fn main() {
    let opts = BenchOpts::from_args();
    println!(
        "{}",
        opts.banner("Ablation: Block vs RoundRobin sharding (100% updates)")
    );
    let sweep = opts.sweep();
    let mut fig = Figure::new("throughput by shard policy", sweep.clone());
    let mut elim_fig =
        Figure::new("%elimination by shard policy", sweep.clone()).y_unit("% of ops");

    for aggregators in [2usize, 4] {
        for (name, policy) in [
            ("block", ShardPolicy::Block),
            ("rrobin", ShardPolicy::RoundRobin),
        ] {
            let mut tputs = Vec::new();
            let mut elims = Vec::new();
            for &n in &sweep {
                let (t, e) = averaged(&opts, n, aggregators, policy);
                tputs.push(t);
                elims.push(e);
            }
            fig.add_series(format!("{name}_K{aggregators}"), tputs);
            elim_fig.add_series(format!("{name}_K{aggregators}"), elims);
        }
    }

    println!("{}", fig.render_table());
    println!("{}", elim_fig.render_table());
    println!(
        "# reading: near-identical columns per K = the mechanism is policy-invariant\n\
         # (as DESIGN.md predicts for a non-NUMA host); K shifts both policies together."
    );
    if let Err(e) = fig.write_csv(&opts.csv_dir, "shard_policy") {
        eprintln!("warning: could not write CSV: {e}");
    }
    if let Err(e) = elim_fig.write_csv(&opts.csv_dir, "shard_policy_elim") {
        eprintln!("warning: could not write CSV: {e}");
    }
}
