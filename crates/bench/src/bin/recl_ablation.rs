//! Ablation: what the reclamation substrate costs (paper §4).
//!
//! The paper deploys DEBRA-style epochs and notes other schemes apply.
//! This binary quantifies the choice on the most reclamation-sensitive
//! algorithm in the lineup — the Treiber stack, whose pop dereferences
//! shared nodes on every CAS attempt — under the 100%-update mix:
//!
//! * **TRB** — epoch-based reclamation (the repo default),
//! * **TRB-HP** — hazard pointers (store + SeqCst fence per attempt),
//! * **TRB-LEAK** — no reclamation at all (free-list upper bound:
//!   nodes are simply leaked, so this is the cost floor any scheme
//!   should be compared against).
//!
//! SEC itself is far less sensitive: combiners amortize the pin over a
//! whole batch. The SEC row is included to show exactly that.
//!
//! ```text
//! cargo run -p sec-bench --release --bin recl_ablation
//! ```

use core::mem::ManuallyDrop;
use core::ptr;
use core::sync::atomic::{AtomicPtr, Ordering};
use sec_bench::BenchOpts;
use sec_core::{ConcurrentStack, StackHandle};
use sec_sync::{Backoff, CachePadded};
use sec_workload::stats::Summary;
use sec_workload::table::Figure;
use sec_workload::{run_throughput, Algo, Mix, RunConfig};

/// A Treiber stack that never frees popped nodes (reclamation cost
/// floor). Bench-only: a real application would exhaust memory.
struct LeakTreiberStack<T: Send + 'static> {
    top: CachePadded<AtomicPtr<LeakNode<T>>>,
}

struct LeakNode<T> {
    value: ManuallyDrop<T>,
    next: *mut LeakNode<T>,
}

unsafe impl<T: Send> Send for LeakTreiberStack<T> {}
unsafe impl<T: Send> Sync for LeakTreiberStack<T> {}

impl<T: Send + 'static> LeakTreiberStack<T> {
    fn new() -> Self {
        Self {
            top: CachePadded::new(AtomicPtr::new(ptr::null_mut())),
        }
    }
}

impl<T: Send + 'static> ConcurrentStack<T> for LeakTreiberStack<T> {
    type Handle<'a>
        = LeakHandle<'a, T>
    where
        Self: 'a;

    fn register(&self) -> LeakHandle<'_, T> {
        LeakHandle { stack: self }
    }

    fn name(&self) -> &'static str {
        "TRB-LEAK"
    }
}

struct LeakHandle<'a, T: Send + 'static> {
    stack: &'a LeakTreiberStack<T>,
}

impl<T: Send + 'static> StackHandle<T> for LeakHandle<'_, T> {
    fn push(&mut self, value: T) {
        let node = Box::into_raw(Box::new(LeakNode {
            value: ManuallyDrop::new(value),
            next: ptr::null_mut(),
        }));
        let mut backoff = Backoff::new();
        loop {
            let cur = self.stack.top.load(Ordering::Acquire);
            unsafe { (*node).next = cur };
            if self
                .stack
                .top
                .compare_exchange(cur, node, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return;
            }
            backoff.spin();
        }
    }

    fn pop(&mut self) -> Option<T> {
        let mut backoff = Backoff::new();
        loop {
            let cur = self.stack.top.load(Ordering::Acquire);
            if cur.is_null() {
                return None;
            }
            // Safety (bench-only): nodes are never freed, so `cur`
            // always points to a live allocation.
            let next = unsafe { (*cur).next };
            if self
                .stack
                .top
                .compare_exchange(cur, next, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                // Leak the node; read the value out.
                return Some(ManuallyDrop::into_inner(unsafe {
                    ptr::read(&(*cur).value)
                }));
            }
            backoff.spin();
        }
    }

    fn peek(&mut self) -> Option<T>
    where
        T: Clone,
    {
        let cur = self.stack.top.load(Ordering::Acquire);
        if cur.is_null() {
            None
        } else {
            // Safety: never freed (leaked).
            Some(ManuallyDrop::into_inner(unsafe { (*cur).value.clone() }))
        }
    }
}

fn averaged_algo(opts: &BenchOpts, algo: Algo, threads: usize) -> f64 {
    let samples: Vec<f64> = (0..opts.runs)
        .map(|_| {
            let cfg = RunConfig {
                duration: opts.duration,
                prefill: opts.prefill,
                ..RunConfig::new(threads, Mix::UPDATE_100)
            };
            sec_workload::run_algo(algo, &cfg).result.mops()
        })
        .collect();
    Summary::of(&samples).mean
}

fn averaged_leak(opts: &BenchOpts, threads: usize) -> f64 {
    let samples: Vec<f64> = (0..opts.runs)
        .map(|_| {
            let stack: LeakTreiberStack<u64> = LeakTreiberStack::new();
            let cfg = RunConfig {
                duration: opts.duration,
                prefill: opts.prefill,
                ..RunConfig::new(threads, Mix::UPDATE_100)
            };
            run_throughput(&stack, &cfg).mops()
        })
        .collect();
    Summary::of(&samples).mean
}

fn main() {
    let opts = BenchOpts::from_args();
    println!(
        "{}",
        opts.banner("Ablation: reclamation substrate on the Treiber hot path (100% updates)")
    );
    let sweep = opts.sweep();
    let mut fig = Figure::new("throughput by reclamation scheme", sweep.clone());

    for (label, algo) in [
        ("TRB (EBR)", Algo::Trb),
        ("TRB-HP", Algo::TrbHp),
        ("SEC (EBR)", Algo::Sec { aggregators: 2 }),
    ] {
        let ys: Vec<f64> = sweep
            .iter()
            .map(|&n| averaged_algo(&opts, algo, n))
            .collect();
        fig.add_series(label, ys);
    }

    let ys: Vec<f64> = sweep.iter().map(|&n| averaged_leak(&opts, n)).collect();
    fig.add_series("TRB-LEAK (floor)", ys);

    println!("{}", fig.render_table());
    println!(
        "# reading: EBR should sit near the leak floor (pin is ~2 relaxed stores);\n\
         # HP pays a fence per pop attempt, so its gap widens with contention;\n\
         # SEC's combiners amortize reclamation, so its row barely moves."
    );
    if let Err(e) = fig.write_csv(&opts.csv_dir, "recl_ablation") {
        eprintln!("warning: could not write CSV: {e}");
    }
}
