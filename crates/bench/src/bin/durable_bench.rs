//! Pricing crash-durability: every SEC family swept across the
//! durable-logging modes, from no logging at all to the
//! flush-per-operation strawman (DESIGN.md §16).
//!
//! ```text
//! cargo run -p sec-bench --release --bin durable_bench
//! cargo run -p sec-bench --release --bin durable_bench -- --duration-ms 250 --runs 3
//! ```
//!
//! The axis of interest is the *flush-amortization gap*: a durable
//! combining batch writes one log record (and, under
//! [`SyncMode::Sync`], issues one `msync`) for a whole frozen batch of
//! operations, so the per-operation durability cost shrinks with the
//! batching degree — the same combining win the throughput figures
//! show, replayed against a persistent heap. The per-op granularity
//! rows are the strawman every persistent-object design warns about:
//! one record (and one flush) per operation, which turns the log into
//! a serial bottleneck.
//!
//! Modes, cheapest to dearest:
//!
//! | mode          | heap      | records      | flushes       |
//! |---------------|-----------|--------------|---------------|
//! | `off`         | —         | —            | —             |
//! | `vol/batch`   | anonymous | per batch    | never         |
//! | `vol/op`      | anonymous | per op       | never         |
//! | `mmap/batch`  | file      | per batch    | never (page cache survives kill−9) |
//! | `mmap/batch+sync` | file  | per batch    | one `msync` per record |
//! | `mmap/op+sync`    | file  | per op       | one `msync` per op |
//!
//! Writes `results/durable.csv` plus the machine-readable
//! `results/BENCH_durable.json` and a repo-root `BENCH_durable.json`
//! copy (same convention as `BENCH_families.json` /
//! `BENCH_replay.json`) for trend tracking across commits.
//!
//! [`SyncMode::Sync`]: sec_core::SyncMode::Sync

use sec_bench::BenchOpts;
use sec_core::{LogGranularity, SyncMode};
use sec_workload::stats::Summary;
use sec_workload::{run_algo, Algo, DurableSetup, MapMix, Mix, RunConfig};

/// The families priced here. The adaptive stack is omitted: its
/// durable constructor is the fixed stack's (durable shards are
/// dedicated aggregators, outside the elastic range).
const FAMILIES: [Algo; 4] = [
    Algo::Sec { aggregators: 2 },
    Algo::SecQueue,
    Algo::SecCounter,
    Algo::SecMap,
];

/// One durability mode: a label and the `RunConfig::durable` value
/// that selects it (`None` = the ordinary in-memory structure).
struct Mode {
    name: &'static str,
    setup: Option<DurableSetup>,
}

/// The swept modes. Per-op rows get single-entry record slots and a
/// deeper log: with one record per operation, capacity bounds the
/// run's op count (the log is not circular), and a 9-word slot keeps
/// the deeper log's footprint lazy-page-sized.
fn modes() -> Vec<Mode> {
    let per_op = |setup: DurableSetup| DurableSetup {
        granularity: LogGranularity::PerOp,
        batch_entries: 1,
        record_capacity: 1 << 22,
        ..setup
    };
    vec![
        Mode {
            name: "off",
            setup: None,
        },
        Mode {
            name: "vol/batch",
            setup: Some(DurableSetup::volatile()),
        },
        Mode {
            name: "vol/op",
            setup: Some(per_op(DurableSetup::volatile())),
        },
        Mode {
            name: "mmap/batch",
            setup: Some(DurableSetup::file_backed()),
        },
        Mode {
            name: "mmap/batch+sync",
            setup: Some(DurableSetup {
                sync: SyncMode::Sync,
                ..DurableSetup::file_backed()
            }),
        },
        Mode {
            name: "mmap/op+sync",
            setup: Some(per_op(DurableSetup {
                sync: SyncMode::Sync,
                ..DurableSetup::file_backed()
            })),
        },
    ]
}

/// One (family, mode) measurement.
struct Row {
    family: String,
    mode: &'static str,
    mops_mean: f64,
    cv_pct: f64,
    /// Throughput relative to the family's `off` row (1.0 = free).
    rel_off: f64,
}

/// Hand-rolled JSON encoding (the workspace carries no serde; same
/// policy as the `families` and `replay` binaries).
fn durable_json(opts: &BenchOpts, threads: usize, rows: &[Row]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"durable\",\n");
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str(&format!("  \"runs\": {},\n", opts.runs));
    out.push_str(&format!(
        "  \"duration_ms\": {},\n",
        opts.duration.as_millis()
    ));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"family\": \"{}\", \"mode\": \"{}\", \"mops_mean\": {:.4}, \
             \"cv_pct\": {:.2}, \"rel_off\": {:.4}}}{}\n",
            r.family,
            r.mode,
            r.mops_mean,
            r.cv_pct,
            r.rel_off,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn durable_csv(rows: &[Row]) -> String {
    let mut out = String::from("family,mode,mops_mean,cv_pct,rel_off\n");
    for r in rows {
        out.push_str(&format!(
            "{},{},{:.4},{:.2},{:.4}\n",
            r.family, r.mode, r.mops_mean, r.cv_pct, r.rel_off
        ));
    }
    out
}

fn main() {
    let opts = BenchOpts::from_args();
    // The axis here is the durability mode, not the thread count: one
    // moderately contended cell per (family, mode).
    let threads = opts.max_threads.clamp(2, 4);
    println!(
        "{}",
        opts.banner("durable logging: flush-per-batch vs flush-per-op")
    );
    println!("# {threads} threads per cell; rel_off = throughput / same family's 'off' row");

    let mut rows: Vec<Row> = Vec::new();
    for algo in FAMILIES {
        let mut off_mean = 0.0f64;
        println!("\n== {} ==", algo.label());
        for mode in modes() {
            let cfg = RunConfig {
                duration: opts.duration,
                prefill: opts.prefill,
                durable: mode.setup,
                map_mix: MapMix::WRITE_HEAVY,
                ..RunConfig::new(threads, Mix::UPDATE_100)
            };
            let samples: Vec<f64> = (0..opts.runs)
                .map(|r| {
                    let cfg = RunConfig {
                        seed: cfg.seed ^ (r as u64) << 32,
                        ..cfg
                    };
                    run_algo(algo, &cfg).result.mops()
                })
                .collect();
            let s = Summary::of(&samples);
            if mode.name == "off" {
                off_mean = s.mean;
            }
            let rel = if off_mean > 0.0 {
                s.mean / off_mean
            } else {
                0.0
            };
            println!(
                "  {:>15} | {:>9.3} Mops/s (cv {:>4.1}%) | x{:.3} of off",
                mode.name,
                s.mean,
                s.cv_pct(),
                rel
            );
            rows.push(Row {
                family: algo.label(),
                mode: mode.name,
                mops_mean: s.mean,
                cv_pct: s.cv_pct(),
                rel_off: rel,
            });
        }
    }

    let csv = durable_csv(&rows);
    let json = durable_json(&opts, threads, &rows);
    let _ = std::fs::create_dir_all(&opts.csv_dir);
    for (path, body) in [
        (opts.csv_dir.join("durable.csv"), &csv),
        (opts.csv_dir.join("BENCH_durable.json"), &json),
        // Repo-root copy so trend tooling finds every BENCH_* drop in
        // one place (same policy as BENCH_families.json).
        (std::path::PathBuf::from("BENCH_durable.json"), &json),
    ] {
        match std::fs::write(&path, body) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
        }
    }
}
