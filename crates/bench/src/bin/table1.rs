//! Regenerates **Table 1** (and Tables 2/3): SEC's batching degree,
//! %elimination and %combining per update mix, averaged across the
//! thread sweep exactly as the paper aggregates them ("average size of
//! batches during an execution … across different thread counts").
//!
//! Also prints the closed-form binomial *model* prediction
//! (`sec_core::sec::model`) for the measured batching degree: within a
//! batch of `n` updates with push share `p`, the expected elimination
//! fraction is `E[2·min(X, n−X)]/n`, `X ~ Binomial(n, p)`. Measurement
//! tracking the model is the "elimination degree is optimal within each
//! batch" claim of §6, quantified.
//!
//! ```text
//! cargo run -p sec-bench --release --bin table1
//! ```

use sec_bench::BenchOpts;
use sec_core::sec::model;
use sec_workload::{run_algo, Algo, Mix, RunConfig};

fn main() {
    let opts = BenchOpts::from_args();
    println!(
        "{}",
        opts.banner("Table 1: SEC batching degree / %elimination / %combining")
    );
    let sweep = opts.sweep();
    let algo = Algo::Sec { aggregators: 2 };

    let mixes = [Mix::UPDATE_100, Mix::UPDATE_50, Mix::UPDATE_10];
    let mut rows: Vec<(String, f64, f64, f64)> = Vec::new();
    let mut model_rows: Vec<(f64, f64)> = Vec::new();

    for mix in mixes {
        let mut degree_sum = 0.0;
        let mut elim_sum = 0.0;
        let mut comb_sum = 0.0;
        let mut cells = 0.0;
        for &threads in &sweep {
            if threads < 2 {
                continue; // batching is a concurrency phenomenon
            }
            for r in 0..opts.runs {
                let cfg = RunConfig {
                    duration: opts.duration,
                    prefill: opts.prefill,
                    seed: 0xC0FFEE ^ (r as u64) << 32,
                    ..RunConfig::new(threads, mix)
                };
                let out = run_algo(algo, &cfg);
                let rep = out.sec_report.expect("SEC reports batch stats");
                degree_sum += rep.batching_degree();
                elim_sum += rep.pct_eliminated();
                comb_sum += rep.pct_combined();
                cells += 1.0;
                eprintln!(
                    "  {mix} | {threads:>3} threads run {r}: degree {:.1}, elim {:.0}%, comb {:.0}%",
                    rep.batching_degree(),
                    rep.pct_eliminated(),
                    rep.pct_combined()
                );
            }
        }
        if cells == 0.0 {
            cells = 1.0;
        }
        let mean_degree = degree_sum / cells;
        rows.push((
            format!("{}% upd", mix.update_pct()),
            mean_degree,
            elim_sum / cells,
            comb_sum / cells,
        ));
        // Push share among *updates* (peeks never enter a batch); the
        // paper's mixes are all balanced, so p = 0.5 here, but compute
        // it from the mix so custom mixes stay honest.
        let push_prob = mix.push as f64 / (mix.push + mix.pop).max(1) as f64;
        let n = mean_degree.round().max(0.0) as u64;
        model_rows.push((
            model::expected_pct_eliminated(n, push_prob),
            model::expected_pct_combined(n, push_prob),
        ));
    }

    // The paper's Table 1 layout: workloads as columns.
    println!("## Table 1 — SEC (2 aggregators)");
    print!("{:<18}", "Workload →");
    for (label, _, _, _) in &rows {
        print!(" {label:>10}");
    }
    println!();
    print!("{:<18}", "Batching Degree");
    for (_, d, _, _) in &rows {
        print!(" {d:>10.1}");
    }
    println!();
    print!("{:<18}", "%Elimination");
    for (_, _, e, _) in &rows {
        print!(" {:>9.0}%", e);
    }
    println!();
    print!("{:<18}", "%Combining");
    for (_, _, _, c) in &rows {
        print!(" {:>9.0}%", c);
    }
    println!();
    print!("{:<18}", "%Elim (model)");
    for (e, _) in &model_rows {
        print!(" {:>9.0}%", e);
    }
    println!();
    print!("{:<18}", "%Comb (model)");
    for (_, c) in &model_rows {
        print!(" {:>9.0}%", c);
    }
    println!();
    println!(
        "# paper (Emerald): degrees 17.8/17.2/14, elim 79/79/77%, comb 21/21/23%\n\
         # model rows: E[2·min(X,n−X)]/n at the measured mean batch size — measured %elim\n\
         # tracking the model is §6's 'elimination degree is optimal within each batch'."
    );

    // CSV.
    let mut csv = String::from(
        "workload,batching_degree,pct_elimination,pct_combining,model_pct_elimination,model_pct_combining\n",
    );
    for ((label, d, e, c), (me, mc)) in rows.iter().zip(&model_rows) {
        csv.push_str(&format!("{label},{d:.2},{e:.2},{c:.2},{me:.2},{mc:.2}\n"));
    }
    if std::fs::create_dir_all(&opts.csv_dir).is_ok() {
        let _ = std::fs::write(opts.csv_dir.join("table1.csv"), csv);
    }
}
