//! Ablation: the freezer's aggregation backoff (paper §3.1).
//!
//! "The freezer thread executes a short backoff before freezing B to
//! increase the elimination degree of SEC … Experiments showed that
//! this results in enhanced performance." This binary sweeps both
//! halves of our backoff implementation — pause-loop spins and
//! `yield_now` calls — and reports throughput *and* the resulting
//! batching/elimination degrees, making the paper's trade-off
//! observable: a longer window ⇒ bigger batches and more elimination,
//! up to the point where waiting dominates. On an oversubscribed host
//! only the yields open the window (joining threads need CPU time);
//! on a machine with idle cores the spins do.
//!
//! ```text
//! cargo run -p sec-bench --release --bin freezer_backoff
//! ```

use sec_bench::BenchOpts;
use sec_core::{SecConfig, SecStack};
use sec_workload::stats::Summary;
use sec_workload::{run_throughput, Mix, RunConfig};

fn main() {
    let opts = BenchOpts::from_args();
    println!(
        "{}",
        opts.banner("Ablation: freezer backoff sweep (SEC, 100% updates)")
    );
    let threads = *opts.sweep().last().unwrap_or(&2);
    let configs: Vec<(u32, u32)> = vec![
        (0, 0),
        (64, 0),
        (256, 0),
        (1024, 0),
        (4096, 0),
        (0, 1),
        (64, 1),
        (0, 2),
        (0, 4),
    ];

    println!(
        "{:>8} {:>8} {:>10} {:>14} {:>10}",
        "spins", "yields", "Mops/s", "batch_degree", "pct_elim"
    );
    let mut csv = String::from("spins,yields,mops,batch_degree,pct_elim\n");
    for &(spins, yields) in &configs {
        let mut tput = Vec::new();
        let mut degree = Vec::new();
        let mut elim = Vec::new();
        for r in 0..opts.runs {
            let cfg = RunConfig {
                duration: opts.duration,
                prefill: opts.prefill,
                seed: 0xBAC0FF ^ (r as u64) << 32,
                ..RunConfig::new(threads, Mix::UPDATE_100)
            };
            let stack: SecStack<u64> = SecStack::with_config(
                SecConfig::new(2, cfg.threads + 1)
                    .freezer_backoff(spins)
                    .freezer_yields(yields),
            );
            let res = run_throughput(&stack, &cfg);
            let rep = stack.stats().report();
            tput.push(res.mops());
            degree.push(rep.batching_degree());
            elim.push(rep.pct_eliminated());
        }
        let (t, d, e) = (
            Summary::of(&tput).mean,
            Summary::of(&degree).mean,
            Summary::of(&elim).mean,
        );
        println!("{spins:>8} {yields:>8} {t:>10.3} {d:>14.1} {e:>9.0}%");
        csv.push_str(&format!("{spins},{yields},{t:.4},{d:.2},{e:.2}\n"));
    }
    println!("# at {threads} threads; defaults are spins=0, yields=1");
    if std::fs::create_dir_all(&opts.csv_dir).is_ok() {
        let _ = std::fs::write(opts.csv_dir.join("freezer_backoff.csv"), csv);
    }
}
