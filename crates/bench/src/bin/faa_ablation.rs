//! Ablation: the aggregating-funnels lineage (DESIGN.md §7).
//!
//! SEC's contention-dispersal scheme descends from aggregating funnels
//! [Roh et al., PPoPP '25]. This binary compares three fetch&add
//! implementations under rising thread counts — hardware `fetch_add`, a
//! TTAS-lock-protected counter, and `sec_sync::funnel` with 1/2/4
//! shards — showing the same crossover the funnels paper (and hence
//! SEC's sharding choice) is built on: the funnel loses at low thread
//! counts (batching overhead) and wins once the hardware counter's
//! cache line becomes the bottleneck.
//!
//! ```text
//! cargo run -p sec-bench --release --bin faa_ablation
//! ```

use sec_bench::BenchOpts;
use sec_sync::funnel::AggregatingFunnel;
use sec_sync::TtasLock;
use sec_workload::stats::Summary;
use sec_workload::table::Figure;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::Instant;

/// Runs `threads` workers hammering `op` for `opts.duration`; returns
/// Mops/s.
fn measure(opts: &BenchOpts, threads: usize, op: impl Fn(usize) + Sync) -> f64 {
    let barrier = Barrier::new(threads + 1);
    let stop = AtomicBool::new(false);
    let total: u64 = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let barrier = &barrier;
                let stop = &stop;
                let op = &op;
                scope.spawn(move || {
                    barrier.wait();
                    let mut n = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        for _ in 0..64 {
                            op(t);
                        }
                        n += 64;
                    }
                    n
                })
            })
            .collect();
        barrier.wait();
        let start = Instant::now();
        std::thread::sleep(opts.duration);
        stop.store(true, Ordering::Relaxed);
        let sum = handles.into_iter().map(|h| h.join().unwrap()).sum();
        let _ = start;
        sum
    });
    total as f64 / opts.duration.as_secs_f64() / 1e6
}

fn averaged(opts: &BenchOpts, threads: usize, op: impl Fn(usize) + Sync) -> f64 {
    let samples: Vec<f64> = (0..opts.runs)
        .map(|_| measure(opts, threads, &op))
        .collect();
    Summary::of(&samples).mean
}

fn main() {
    let opts = BenchOpts::from_args();
    println!(
        "{}",
        opts.banner("Ablation: fetch&add implementations (funnel lineage)")
    );
    let sweep = opts.sweep();
    let mut fig = Figure::new("fetch&add throughput", sweep.clone());

    // Hardware F&A on one cache line.
    let mut ys = Vec::new();
    for &n in &sweep {
        let counter = AtomicU64::new(0);
        ys.push(averaged(&opts, n, |_| {
            counter.fetch_add(1, Ordering::AcqRel);
        }));
    }
    fig.add_series("hw_faa", ys);

    // Lock-protected counter (the naive software baseline).
    let mut ys = Vec::new();
    for &n in &sweep {
        let counter = TtasLock::new(0u64);
        ys.push(averaged(&opts, n, |_| {
            *counter.lock() += 1;
        }));
    }
    fig.add_series("lock", ys);

    // Aggregating funnels with 1, 2, 4 shards.
    for shards in [1usize, 2, 4] {
        let mut ys = Vec::new();
        for &n in &sweep {
            let funnel = AggregatingFunnel::new(shards, 64);
            ys.push(averaged(&opts, n, |t| {
                let _ = funnel.fetch_add_one(t);
            }));
        }
        fig.add_series(format!("funnel_x{shards}"), ys);
    }

    println!("{}", fig.render_table());
    if let Err(e) = fig.write_csv(&opts.csv_dir, "faa_ablation") {
        eprintln!("warning: could not write CSV: {e}");
    }
}
