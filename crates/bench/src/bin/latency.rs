//! Per-operation latency percentiles for all six stack algorithms plus
//! the queue lineup — the distributional view behind the throughput
//! figures (SEC and the combining stacks are blocking, so their tails
//! carry the freezer/combiner waits; TSI's tail carries its pop-side
//! scans; SEC-Q's tail carries its per-end batch waits).
//!
//! ```text
//! cargo run -p sec-bench --release --bin latency
//! ```

use sec_baselines::{
    CcStack, EbStack, FcStack, LockedHashMap, LockedQueue, LockedStack, MsQueue, TreiberHpStack,
    TreiberStack, TsiStack,
};
use sec_bench::BenchOpts;
use sec_core::counter::SecCounter;
use sec_core::{SecConfig, SecMap, SecQueue, SecStack, WaitPolicy};
use sec_workload::{
    measure_counter_latency, measure_latency, measure_map_latency, measure_queue_latency, Algo,
    KeyDist, LatencyReport, MapMix, Mix, ALL_COMPETITORS, MAP_LINEUP, QUEUE_LINEUP,
};

fn measure(algo: Algo, threads: usize, ops: u64, mix: Mix) -> LatencyReport {
    let cap = threads + 1;
    match algo {
        Algo::Sec { aggregators } => measure_latency(
            &SecStack::<u64>::with_config(SecConfig::new(aggregators, cap)),
            threads,
            ops,
            mix,
        ),
        Algo::SecAdaptive { min_k, max_k } => measure_latency(
            &SecStack::<u64>::with_config(SecConfig::adaptive(min_k, max_k, cap)),
            threads,
            ops,
            mix,
        ),
        Algo::Trb => measure_latency(&TreiberStack::<u64>::new(cap), threads, ops, mix),
        Algo::Eb => measure_latency(&EbStack::<u64>::new(cap), threads, ops, mix),
        Algo::Fc => measure_latency(&FcStack::<u64>::new(cap), threads, ops, mix),
        Algo::Cc => measure_latency(&CcStack::<u64>::new(cap), threads, ops, mix),
        Algo::Tsi => measure_latency(&TsiStack::<u64>::new(cap), threads, ops, mix),
        Algo::TrbHp => measure_latency(&TreiberHpStack::<u64>::new(cap), threads, ops, mix),
        Algo::Lck => measure_latency(&LockedStack::<u64>::new(cap), threads, ops, mix),
        Algo::SecQueue => measure_queue_latency(&SecQueue::<u64>::new(cap), threads, ops, mix),
        Algo::MsQ => measure_queue_latency(&MsQueue::<u64>::new(cap), threads, ops, mix),
        Algo::LckQ => measure_queue_latency(&LockedQueue::<u64>::new(cap), threads, ops, mix),
        Algo::SecCounter => measure_counter_latency(
            &SecCounter::with_config(SecConfig::new(2, cap)),
            threads,
            ops,
            mix,
        ),
        // The map family reads the Mix as its keyed counterpart:
        // peek→get, push→insert, pop→remove, keys uniform over 1024.
        Algo::SecMap => measure_map_latency(
            &SecMap::<u64, u64>::with_config(SecConfig::new(2, cap)),
            threads,
            ops,
            MapMix::new(mix.peek, mix.push, mix.pop),
            KeyDist::Uniform { keys: 1024 },
        ),
        Algo::LckMap => measure_map_latency(
            &LockedHashMap::<u64, u64>::new(cap),
            threads,
            ops,
            MapMix::new(mix.peek, mix.push, mix.pop),
            KeyDist::Uniform { keys: 1024 },
        ),
    }
}

fn main() {
    let opts = BenchOpts::from_args();
    println!("{}", opts.banner("Per-op latency percentiles (ns)"));
    let threads = *opts.sweep().last().unwrap_or(&2);
    let ops_per_thread = 5_000u64;

    let mut csv = String::from("mix,algo,p50_ns,p90_ns,p99_ns,p999_ns,max_ns\n");
    for (mix, lineup) in [
        (Mix::UPDATE_100, &ALL_COMPETITORS[..]),
        (Mix::UPDATE_50, &ALL_COMPETITORS[..]),
        (Mix::UPDATE_10, &ALL_COMPETITORS[..]),
        // The queue lineup has no read-only operation; measure it on
        // the update-heavy mix only.
        (Mix::UPDATE_100, &QUEUE_LINEUP[..]),
        // Counter: fetch_add under the update-heavy mix.
        (Mix::UPDATE_100, &[Algo::SecCounter][..]),
        // Map: insert/remove under update-heavy, get-dominated under
        // the 10%-updates mix (the keyed analogue of read-heavy).
        (Mix::UPDATE_100, &MAP_LINEUP[..]),
        (Mix::UPDATE_10, &MAP_LINEUP[..]),
    ] {
        println!("## {mix} @ {threads} threads ({ops_per_thread} timed ops/thread)");
        println!(
            "{:>8} {:>10} {:>10} {:>10} {:>10} {:>12}",
            "algo", "p50", "p90", "p99", "p999", "max"
        );
        for &algo in lineup {
            let r = measure(algo, threads, ops_per_thread, mix);
            println!(
                "{:>8} {:>10} {:>10} {:>10} {:>10} {:>12}",
                algo.label(),
                r.p50,
                r.p90,
                r.p99,
                r.p999,
                r.max
            );
            csv.push_str(&format!(
                "{},{},{},{},{},{},{}\n",
                mix.label(),
                algo.label(),
                r.p50,
                r.p90,
                r.p99,
                r.p999,
                r.max
            ));
        }
        println!();
    }

    // Oversubscribed lineup (DESIGN.md §11): at 4× the hardware
    // threads, throughput alone hides what the wait policy does to the
    // *tail* — a spinning waiter's p99 is a scheduling quantum, a
    // parked waiter's is a wakeup. One row per policy for the SEC
    // stack and queue; the `@4x` mix label keeps the CSV rows distinct
    // from the core lineup above.
    let hw = sec_sync::topology::hardware_threads().max(1);
    let over = 4 * hw;
    println!(
        "## oversubscribed {} @ {over} threads (4x {hw} hw threads)",
        Mix::UPDATE_100
    );
    println!(
        "{:>14} {:>10} {:>10} {:>10} {:>10} {:>12}",
        "algo[policy]", "p50", "p90", "p99", "p999", "max"
    );
    for policy in [
        WaitPolicy::Spin,
        WaitPolicy::SpinThenYield,
        WaitPolicy::spin_then_park(),
    ] {
        let stack: SecStack<u64> =
            SecStack::with_config(SecConfig::new(2, over + 1).wait_policy(policy));
        let rs = measure_latency(&stack, over, ops_per_thread, Mix::UPDATE_100);
        let queue: SecQueue<u64> = SecQueue::new(over + 1).wait_policy(policy);
        let rq = measure_queue_latency(&queue, over, ops_per_thread, Mix::UPDATE_100);
        for (label, r) in [("SEC", rs), ("SEC-Q", rq)] {
            println!(
                "{:>14} {:>10} {:>10} {:>10} {:>10} {:>12}",
                format!("{label}[{}]", policy.label()),
                r.p50,
                r.p90,
                r.p99,
                r.p999,
                r.max
            );
            csv.push_str(&format!(
                "upd100@4x,{label}[{}],{},{},{},{},{}\n",
                policy.label(),
                r.p50,
                r.p90,
                r.p99,
                r.p999,
                r.max
            ));
        }
    }
    println!();

    if std::fs::create_dir_all(&opts.csv_dir).is_ok() {
        let _ = std::fs::write(opts.csv_dir.join("latency.csv"), csv);
    }
}
