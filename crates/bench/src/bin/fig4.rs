//! Regenerates **Figure 4** (and Figures 7/8/11/12): SEC's
//! aggregator-count ablation — SEC_Agg1 … SEC_Agg5 across the three
//! update mixes plus push-only and pop-only.
//!
//! The paper's findings this reproduces: push-only favours more
//! aggregators (pure contention dispersal, no elimination to lose);
//! 100% updates favours 2–4; read-heavier mixes favour 1–2 (elimination
//! opportunities concentrate).
//!
//! Beyond the paper, every mix carries one extra series: elastic
//! sharding (`SEC_Ada1to5`, DESIGN.md §8), which should track the best
//! static K of each cell without retuning. The `adaptive_k` binary
//! drills into that comparison.
//!
//! ```text
//! cargo run -p sec-bench --release --bin fig4
//! ```

use sec_bench::BenchOpts;
use sec_workload::stats::{ResizeTotals, Summary};
use sec_workload::table::Figure;
use sec_workload::{run_algo, Algo, Mix, RunConfig};

fn main() {
    let opts = BenchOpts::from_args();
    println!("{}", opts.banner("Figure 4: SEC with 1..=5 aggregators"));
    let sweep = opts.sweep();

    for (mix, stem) in [
        (Mix::UPDATE_100, "fig4_upd100"),
        (Mix::UPDATE_50, "fig4_upd50"),
        (Mix::UPDATE_10, "fig4_upd10"),
        (Mix::PUSH_ONLY, "fig4_push_only"),
        (Mix::POP_ONLY, "fig4_pop_only"),
    ] {
        let mut fig = Figure::new(format!("Figure 4 — {mix}"), sweep.clone());
        let lineup: Vec<Algo> = (1..=5usize)
            .map(|k| Algo::Sec { aggregators: k })
            .chain([Algo::SecAdaptive { min_k: 1, max_k: 5 }])
            .collect();
        for algo in lineup {
            let series = algo.ablation_label();
            let mut ys = Vec::with_capacity(sweep.len());
            let mut resize_cols: Vec<ResizeTotals> = Vec::with_capacity(sweep.len());
            for &threads in &sweep {
                // Pop-only: scale the prefill with the measurement
                // window so pops measure removal, not the EMPTY path
                // (capped to bound memory on paper-length runs).
                let prefill = if mix == Mix::POP_ONLY {
                    (opts.duration.as_millis() as usize * 4_000).clamp(100_000, 2_000_000)
                } else {
                    opts.prefill
                };
                let cfg = RunConfig {
                    duration: opts.duration,
                    prefill,
                    ..RunConfig::new(threads, mix)
                };
                let mut resizes = ResizeTotals::new();
                let samples: Vec<f64> = (0..opts.runs)
                    .map(|r| {
                        let cfg = RunConfig {
                            seed: cfg.seed ^ (r as u64) << 32,
                            ..cfg
                        };
                        let out = run_algo(algo, &cfg);
                        resizes.add(out.sec_report.as_ref());
                        out.result.mops()
                    })
                    .collect();
                resize_cols.push(resizes);
                let s = Summary::of(&samples);
                eprintln!(
                    "  {mix} | {series} | {threads:>3} threads: {:.3} Mops/s",
                    s.mean
                );
                ys.push(s.mean);
            }
            fig.add_series(series.clone(), ys);
            // The elastic series carries its grow/shrink totals as
            // unplotted CSV columns (zero for the static lineup, so
            // only the adaptive variant emits them).
            if matches!(algo, Algo::SecAdaptive { .. }) {
                fig.add_extra(
                    format!("{series}_grows"),
                    resize_cols.iter().map(|r| r.grows as f64).collect(),
                );
                fig.add_extra(
                    format!("{series}_shrinks"),
                    resize_cols.iter().map(|r| r.shrinks as f64).collect(),
                );
            }
        }
        println!("{}", fig.render_table());
        println!("{}", fig.render_ascii_plot(12));
        if let Err(e) = fig.write_csv(&opts.csv_dir, stem) {
            eprintln!("warning: could not write CSV: {e}");
        }
    }
}
