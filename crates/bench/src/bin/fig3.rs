//! Regenerates **Figure 3** (and Figures 6/10): push-only and pop-only
//! throughput — the workloads where no elimination is possible,
//! isolating each algorithm's combining/synchronization cost and TSI's
//! push/pop asymmetry.
//!
//! For the pop-only workload the stack is prefilled proportionally to
//! the expected op volume so pops don't just measure the EMPTY path.
//!
//! ```text
//! cargo run -p sec-bench --release --bin fig3
//! ```

use sec_bench::BenchOpts;
use sec_workload::stats::Summary;
use sec_workload::table::Figure;
use sec_workload::{run_algo, Mix, RunConfig, ALL_COMPETITORS};

fn main() {
    let opts = BenchOpts::from_args();
    println!(
        "{}",
        opts.banner("Figure 3: push-only and pop-only throughput")
    );
    let sweep = opts.sweep();

    for (mix, stem) in [
        (Mix::PUSH_ONLY, "fig3_push_only"),
        (Mix::POP_ONLY, "fig3_pop_only"),
    ] {
        let mut fig = Figure::new(format!("Figure 3 — {mix}"), sweep.clone());
        for algo in ALL_COMPETITORS {
            let mut ys = Vec::with_capacity(sweep.len());
            for &threads in &sweep {
                // Pop-only: scale the prefill with the measurement
                // window so pops measure removal, not the EMPTY path
                // (capped to bound memory on paper-length runs).
                let prefill = if mix == Mix::POP_ONLY {
                    (opts.duration.as_millis() as usize * 4_000).clamp(100_000, 2_000_000)
                } else {
                    opts.prefill
                };
                let cfg = RunConfig {
                    duration: opts.duration,
                    prefill,
                    ..RunConfig::new(threads, mix)
                };
                let samples: Vec<f64> = (0..opts.runs)
                    .map(|r| {
                        let cfg = RunConfig {
                            seed: cfg.seed ^ (r as u64) << 32,
                            ..cfg
                        };
                        run_algo(algo, &cfg).result.mops()
                    })
                    .collect();
                let s = Summary::of(&samples);
                eprintln!(
                    "  {mix} | {algo:>8} | {threads:>3} threads: {:.3} Mops/s",
                    s.mean
                );
                ys.push(s.mean);
            }
            fig.add_series(algo.label(), ys);
        }
        println!("{}", fig.render_table());
        println!("{}", fig.render_ascii_plot(12));
        if let Err(e) = fig.write_csv(&opts.csv_dir, stem) {
            eprintln!("warning: could not write CSV: {e}");
        }
    }
}
