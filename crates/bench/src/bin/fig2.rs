//! Regenerates **Figure 2** (and its per-machine variants Figure 5 /
//! Figure 9): throughput vs thread count for all six algorithms under
//! the three update mixes (100%, 50%, 10%).
//!
//! ```text
//! cargo run -p sec-bench --release --bin fig2 -- --duration-ms 5000 --runs 5
//! ```
//!
//! Prints one table per mix (series = algorithms, rows = thread counts,
//! cells = Mops/s) and writes `results/fig2_upd{100,50,10}.csv`. The
//! SEC series additionally carries its node-recycling counter block
//! (hit %, misses, overflows — DESIGN.md §10) as unplotted CSV columns,
//! the same way the elastic figures carry the resize counters.

use sec_bench::BenchOpts;
use sec_workload::stats::{ReclaimTotals, Summary};
use sec_workload::table::Figure;
use sec_workload::{run_algo, Algo, Mix, RunConfig, ALL_COMPETITORS};
use std::time::Duration;

fn main() {
    let opts = BenchOpts::from_args();
    println!(
        "{}",
        opts.banner("Figure 2: throughput vs #threads, 6 algorithms, 3 mixes")
    );
    let sweep = opts.sweep();

    for (mix, stem) in [
        (Mix::UPDATE_100, "fig2_upd100"),
        (Mix::UPDATE_50, "fig2_upd50"),
        (Mix::UPDATE_10, "fig2_upd10"),
    ] {
        let mut fig = Figure::new(format!("Figure 2 — {mix}"), sweep.clone());
        for algo in ALL_COMPETITORS {
            let mut ys = Vec::with_capacity(sweep.len());
            let mut recycle_cols: Vec<ReclaimTotals> = Vec::with_capacity(sweep.len());
            for &threads in &sweep {
                let cfg = RunConfig {
                    duration: opts.duration,
                    prefill: opts.prefill,
                    ..RunConfig::new(threads, mix)
                };
                let mut recycle = ReclaimTotals::new();
                let samples: Vec<f64> = (0..opts.runs)
                    .map(|r| {
                        let cfg = RunConfig {
                            seed: cfg.seed ^ (r as u64) << 32,
                            ..cfg
                        };
                        let out = run_algo(algo, &cfg);
                        recycle.add(out.reclaim.as_ref());
                        out.result.mops()
                    })
                    .collect();
                let s = Summary::of(&samples);
                eprintln!(
                    "  {mix} | {algo:>8} | {threads:>3} threads: {:.3} Mops/s (cv {:.1}%)",
                    s.mean,
                    s.cv_pct()
                );
                ys.push(s.mean);
                recycle_cols.push(recycle);
            }
            fig.add_series(algo.label(), ys);
            // SEC is the only series with a collector: its recycle
            // counter block rides along as unplotted CSV columns.
            if matches!(algo, Algo::Sec { .. }) {
                fig.add_extra(
                    format!("{}_recycle_hit_pct", algo.label()),
                    recycle_cols.iter().map(|r| r.hit_pct()).collect(),
                );
                fig.add_extra(
                    format!("{}_recycle_misses", algo.label()),
                    recycle_cols.iter().map(|r| r.misses as f64).collect(),
                );
                fig.add_extra(
                    format!("{}_recycle_overflows", algo.label()),
                    recycle_cols.iter().map(|r| r.overflows as f64).collect(),
                );
            }
        }
        println!("{}", fig.render_table());
        println!("{}", fig.render_ascii_plot(12));
        if let Err(e) = fig.write_csv(&opts.csv_dir, stem) {
            eprintln!("warning: could not write CSV: {e}");
        }
    }
    let _ = Duration::ZERO; // keep the import when features change
}
