//! Regenerates **Figure 2** (and its per-machine variants Figure 5 /
//! Figure 9): throughput vs thread count for all six algorithms under
//! the three update mixes (100%, 50%, 10%).
//!
//! ```text
//! cargo run -p sec-bench --release --bin fig2 -- --duration-ms 5000 --runs 5
//! ```
//!
//! Prints one table per mix (series = algorithms, rows = thread counts,
//! cells = Mops/s) and writes `results/fig2_upd{100,50,10}.csv`.

use sec_bench::BenchOpts;
use sec_workload::stats::Summary;
use sec_workload::table::Figure;
use sec_workload::{run_algo, Mix, RunConfig, ALL_COMPETITORS};
use std::time::Duration;

fn main() {
    let opts = BenchOpts::from_args();
    println!(
        "{}",
        opts.banner("Figure 2: throughput vs #threads, 6 algorithms, 3 mixes")
    );
    let sweep = opts.sweep();

    for (mix, stem) in [
        (Mix::UPDATE_100, "fig2_upd100"),
        (Mix::UPDATE_50, "fig2_upd50"),
        (Mix::UPDATE_10, "fig2_upd10"),
    ] {
        let mut fig = Figure::new(format!("Figure 2 — {mix}"), sweep.clone());
        for algo in ALL_COMPETITORS {
            let mut ys = Vec::with_capacity(sweep.len());
            for &threads in &sweep {
                let cfg = RunConfig {
                    duration: opts.duration,
                    prefill: opts.prefill,
                    ..RunConfig::new(threads, mix)
                };
                let samples: Vec<f64> = (0..opts.runs)
                    .map(|r| {
                        let cfg = RunConfig {
                            seed: cfg.seed ^ (r as u64) << 32,
                            ..cfg
                        };
                        run_algo(algo, &cfg).result.mops()
                    })
                    .collect();
                let s = Summary::of(&samples);
                eprintln!(
                    "  {mix} | {algo:>8} | {threads:>3} threads: {:.3} Mops/s (cv {:.1}%)",
                    s.mean,
                    s.cv_pct()
                );
                ys.push(s.mean);
            }
            fig.add_series(algo.label(), ys);
        }
        println!("{}", fig.render_table());
        println!("{}", fig.render_ascii_plot(12));
        if let Err(e) = fig.write_csv(&opts.csv_dir, stem) {
            eprintln!("warning: could not write CSV: {e}");
        }
    }
    let _ = Duration::ZERO; // keep the import when features change
}
