//! The queue family's Figure-2-style evaluation: SEC-Q (the
//! batched-combining FIFO queue of DESIGN.md §9) against the
//! Michael–Scott reference and the locked-`VecDeque` floor, across the
//! standard thread sweep and the three peek-free mixes (100% updates,
//! enqueue-only, dequeue-only).
//!
//! ```text
//! cargo run -p sec-bench --release --bin queue_bench
//! cargo run -p sec-bench --release --bin queue_bench -- --duration-ms 5000 --runs 5
//! ```
//!
//! Prints one table + ASCII plot per mix and writes
//! `results/queue_{upd100,enq_only,deq_only}.csv`. Each CSV carries,
//! beyond the throughput series, SEC-Q's per-cell batching columns
//! (batching degree, combiner CAS failures), the grow/shrink resize
//! counters every SEC report exports (structurally zero for the queue,
//! which does not resize aggregators — the column is part of the
//! standard SEC counter block), and the node-recycling counter block
//! (hit %, misses, overflows — DESIGN.md §10).

use sec_bench::BenchOpts;
use sec_workload::stats::{DegreeTotals, ReclaimTotals, ResizeTotals, Summary};
use sec_workload::table::Figure;
use sec_workload::{run_algo, Algo, Mix, RunConfig, QUEUE_LINEUP};

fn main() {
    let opts = BenchOpts::from_args();
    println!(
        "{}",
        opts.banner("Queue bench: SEC-Q vs MS vs LCK-Q, 3 mixes")
    );
    let sweep = opts.sweep();

    for (mix, stem) in [
        (Mix::UPDATE_100, "queue_upd100"),
        (Mix::PUSH_ONLY, "queue_enq_only"),
        (Mix::POP_ONLY, "queue_deq_only"),
    ] {
        let mut fig = Figure::new(format!("Queue throughput — {mix}"), sweep.clone());
        for algo in QUEUE_LINEUP {
            let mut ys = Vec::with_capacity(sweep.len());
            let mut degrees = Vec::with_capacity(sweep.len());
            let mut cas_fails = Vec::with_capacity(sweep.len());
            let mut resize_cols: Vec<ResizeTotals> = Vec::with_capacity(sweep.len());
            let mut recycle_cols: Vec<ReclaimTotals> = Vec::with_capacity(sweep.len());
            let mut degree_cols: Vec<DegreeTotals> = Vec::with_capacity(sweep.len());
            for &threads in &sweep {
                // Dequeue-only: scale the prefill with the measurement
                // window so dequeues measure removal, not the EMPTY
                // path (mirrors fig4's pop-only handling).
                let prefill = if mix == Mix::POP_ONLY {
                    (opts.duration.as_millis() as usize * 4_000).clamp(100_000, 2_000_000)
                } else {
                    opts.prefill
                };
                let cfg = RunConfig {
                    duration: opts.duration,
                    prefill,
                    ..RunConfig::new(threads, mix)
                };
                let mut resizes = ResizeTotals::new();
                let mut recycle = ReclaimTotals::new();
                let mut degree_dist = DegreeTotals::new();
                let mut degree_sum = 0.0;
                let mut cas_sum = 0u64;
                let samples: Vec<f64> = (0..opts.runs)
                    .map(|r| {
                        let cfg = RunConfig {
                            seed: cfg.seed ^ (r as u64) << 32,
                            ..cfg
                        };
                        let out = run_algo(algo, &cfg);
                        if let Some(rep) = &out.sec_report {
                            degree_sum += rep.batching_degree();
                            cas_sum += rep.cas_failures;
                        }
                        resizes.add(out.sec_report.as_ref());
                        recycle.add(out.reclaim.as_ref());
                        degree_dist.add(out.sec_report.as_ref());
                        out.result.mops()
                    })
                    .collect();
                let s = Summary::of(&samples);
                eprintln!(
                    "  {mix} | {:>6} | {threads:>3} threads: {:.3} Mops/s (cv {:.1}%)",
                    algo.label(),
                    s.mean,
                    s.cv_pct()
                );
                ys.push(s.mean);
                degrees.push(degree_sum / opts.runs.max(1) as f64);
                cas_fails.push(cas_sum as f64);
                resize_cols.push(resizes);
                recycle_cols.push(recycle);
                degree_cols.push(degree_dist);
            }
            fig.add_series(algo.label(), ys);
            // SEC-Q is the only queue with a batch layer: its counter
            // block rides along as unplotted CSV columns.
            if algo == Algo::SecQueue {
                fig.add_extra(format!("{}_batch_degree", algo.label()), degrees);
                // The degree *distribution* (sec-trace's per-batch
                // histogram): the mean above says how much combining
                // happened, min/p50/p99/max say how it was shaped.
                fig.add_extra(
                    format!("{}_degree_min", algo.label()),
                    degree_cols.iter().map(|d| d.min as f64).collect(),
                );
                fig.add_extra(
                    format!("{}_degree_p50", algo.label()),
                    degree_cols.iter().map(|d| d.p50_mean()).collect(),
                );
                fig.add_extra(
                    format!("{}_degree_p99", algo.label()),
                    degree_cols.iter().map(|d| d.p99_mean()).collect(),
                );
                fig.add_extra(
                    format!("{}_degree_max", algo.label()),
                    degree_cols.iter().map(|d| d.max as f64).collect(),
                );
                fig.add_extra(format!("{}_cas_failures", algo.label()), cas_fails);
                fig.add_extra(
                    format!("{}_grows", algo.label()),
                    resize_cols.iter().map(|r| r.grows as f64).collect(),
                );
                fig.add_extra(
                    format!("{}_shrinks", algo.label()),
                    resize_cols.iter().map(|r| r.shrinks as f64).collect(),
                );
                fig.add_extra(
                    format!("{}_recycle_hit_pct", algo.label()),
                    recycle_cols.iter().map(|r| r.hit_pct()).collect(),
                );
                fig.add_extra(
                    format!("{}_recycle_misses", algo.label()),
                    recycle_cols.iter().map(|r| r.misses as f64).collect(),
                );
                fig.add_extra(
                    format!("{}_recycle_overflows", algo.label()),
                    recycle_cols.iter().map(|r| r.overflows as f64).collect(),
                );
            }
        }
        println!("{}", fig.render_table());
        println!("{}", fig.render_ascii_plot(12));
        if let Err(e) = fig.write_csv(&opts.csv_dir, stem) {
            eprintln!("warning: could not write CSV: {e}");
        }
    }
}
