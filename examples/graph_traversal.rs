//! Concurrent graph reachability with the SEC stack as the shared work
//! pool — the "concurrent graph algorithms" use case the paper's
//! introduction motivates (cf. Galois [17]).
//!
//! A DFS-flavoured parallel traversal: threads pop frontier vertices
//! from one shared stack and push newly discovered neighbours back.
//! Stacks (LIFO pools) give depth-first exploration order, which keeps
//! the frontier small and cache-warm compared to a FIFO frontier. Since
//! the pool may momentarily look empty while other workers still hold
//! vertices, termination uses an in-flight counter.
//!
//! ```text
//! cargo run --release --example graph_traversal
//! ```

use sec_repro::SecStack;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// A sparse random graph in CSR-ish form.
struct Graph {
    adj: Vec<Vec<u32>>,
}

impl Graph {
    /// Deterministic pseudo-random graph: `n` vertices, ~`deg` edges
    /// each, plus a Hamiltonian-ish path so everything is reachable
    /// from vertex 0.
    fn demo(n: usize, deg: usize) -> Self {
        let mut adj = vec![Vec::with_capacity(deg + 1); n];
        let mut state = 0x2545_F491_4F6C_u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for (v, edges) in adj.iter_mut().enumerate() {
            if v + 1 < n {
                edges.push((v + 1) as u32);
            }
            for _ in 0..deg {
                edges.push((rng() % n as u64) as u32);
            }
        }
        Self { adj }
    }

    fn len(&self) -> usize {
        self.adj.len()
    }
}

fn main() {
    const THREADS: usize = 4;
    let graph = Graph::demo(200_000, 4);
    println!(
        "parallel reachability: {} vertices, ~{} edges, {} workers, SEC work pool",
        graph.len(),
        graph.len() * 5,
        THREADS
    );

    let visited: Vec<AtomicBool> = (0..graph.len()).map(|_| AtomicBool::new(false)).collect();
    let in_flight = AtomicUsize::new(0);
    let visited_count = AtomicUsize::new(0);
    let pool: SecStack<u32> = SecStack::new(THREADS);

    // Seed the frontier with the root.
    visited[0].store(true, Ordering::Relaxed);
    visited_count.fetch_add(1, Ordering::Relaxed);
    in_flight.fetch_add(1, Ordering::SeqCst);

    let start = std::time::Instant::now();
    std::thread::scope(|scope| {
        for worker in 0..THREADS {
            let pool = &pool;
            let graph = &graph;
            let visited = &visited;
            let in_flight = &in_flight;
            let visited_count = &visited_count;
            scope.spawn(move || {
                let mut h = pool.register();
                if worker == 0 {
                    h.push(0); // the seeded root
                }
                let mut processed = 0usize;
                loop {
                    match h.pop() {
                        Some(v) => {
                            processed += 1;
                            for &w in &graph.adj[v as usize] {
                                // claim-before-push so each vertex enters
                                // the pool at most once.
                                if !visited[w as usize].swap(true, Ordering::Relaxed) {
                                    visited_count.fetch_add(1, Ordering::Relaxed);
                                    in_flight.fetch_add(1, Ordering::SeqCst);
                                    h.push(w);
                                }
                            }
                            // v is fully expanded.
                            in_flight.fetch_sub(1, Ordering::SeqCst);
                        }
                        None => {
                            // Empty pool: done only once nothing is in
                            // flight anywhere.
                            if in_flight.load(Ordering::SeqCst) == 0 {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                }
                processed
            });
        }
    });
    let elapsed = start.elapsed();

    let reached = visited_count.load(Ordering::Relaxed);
    println!(
        "reached {} / {} vertices in {:.1?} ({:.2} Mvertices/s)",
        reached,
        graph.len(),
        elapsed,
        reached as f64 / elapsed.as_secs_f64() / 1e6
    );
    assert_eq!(
        reached,
        graph.len(),
        "the path edges make every vertex reachable"
    );

    let report = pool.stats().report();
    println!(
        "work-pool batches: {}, degree {:.1}, eliminated {:.0}% (pop-meets-push inside batches)",
        report.batches,
        report.batching_degree(),
        report.pct_eliminated()
    );
}
