//! Quickstart: create an SEC stack, share it among threads, observe the
//! batching/elimination instrumentation.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sec_repro::{SecConfig, SecStack};

fn main() {
    const THREADS: usize = 4;
    const OPS_PER_THREAD: usize = 50_000;

    // Paper defaults: two aggregators; capacity for our thread count.
    let config = SecConfig::new(2, THREADS);
    let stack: SecStack<u64> = SecStack::with_config(config);

    println!("SEC quickstart: {THREADS} threads x {OPS_PER_THREAD} ops (balanced push/pop)");

    let start = std::time::Instant::now();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let stack = &stack;
            scope.spawn(move || {
                // Each thread registers once and reuses its handle.
                let mut h = stack.register();
                for i in 0..OPS_PER_THREAD {
                    if (t + i) % 2 == 0 {
                        h.push((t * OPS_PER_THREAD + i) as u64);
                    } else {
                        let _ = h.pop();
                    }
                }
            });
        }
    });
    let elapsed = start.elapsed();

    let total_ops = THREADS * OPS_PER_THREAD;
    println!(
        "completed {} ops in {:.1?} ({:.2} Mops/s)",
        total_ops,
        elapsed,
        total_ops as f64 / elapsed.as_secs_f64() / 1e6
    );

    // The instrumentation behind the paper's Table 1.
    let report = stack.stats().report();
    println!(
        "batches: {}, batching degree: {:.1}, eliminated: {:.0}%, combined: {:.0}%",
        report.batches,
        report.batching_degree(),
        report.pct_eliminated(),
        report.pct_combined()
    );

    // Reclamation health: with recycling on (the default), most
    // quiesced blocks are cached for reuse rather than freed.
    let rs = stack.reclaim_stats();
    println!(
        "reclamation: {} retired, {} freed, {} recycled (hit rate {:.1}%), {} still in limbo",
        rs.retired,
        rs.freed,
        rs.cached,
        rs.hit_pct(),
        rs.pending()
    );

    // Drain what's left to show the API returning values.
    let mut h = stack.register();
    let mut remaining = 0u64;
    while h.pop().is_some() {
        remaining += 1;
    }
    println!("drained {remaining} leftover elements; stack now empty");
    assert_eq!(h.pop(), None);
}
