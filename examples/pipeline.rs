//! A two-stage producer/consumer pipeline on the extension types: a
//! sharded [`SecPool`] as the hot free-buffer pool and a [`SecDeque`]
//! as the stage-1 → stage-2 hand-off (producers `push_back`, consumers
//! `pop_front` ⇒ FIFO through opposite deque ends; urgent items jump
//! the line via `push_front`).
//!
//! ```text
//! cargo run --release --example pipeline
//! ```
//!
//! [`SecPool`]: sec_repro::ext::SecPool
//! [`SecDeque`]: sec_repro::ext::SecDeque

use sec_repro::ext::{SecDeque, SecPool};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A work item travelling through the pipeline.
struct Job {
    id: u64,
    urgent: bool,
    payload: u64,
}

fn main() {
    const PRODUCERS: usize = 2;
    const CONSUMERS: usize = 2;
    const JOBS_PER_PRODUCER: usize = 50_000;
    const POOL_BUFFERS: usize = 128;

    let pool: SecPool<Vec<u8>> = SecPool::new(2, PRODUCERS + CONSUMERS + 1);
    {
        let mut h = pool.register();
        for _ in 0..POOL_BUFFERS {
            h.put(vec![0u8; 1024]);
        }
    }

    let queue: SecDeque<Job> = SecDeque::new(PRODUCERS + CONSUMERS + 1);
    let produced_done = AtomicUsize::new(0);
    let consumed = AtomicUsize::new(0);
    let urgent_seen = AtomicUsize::new(0);

    let start = std::time::Instant::now();
    std::thread::scope(|scope| {
        // Stage 1: producers draw a buffer from the pool, "fill" it,
        // and enqueue a job. Every 1000th job is urgent and jumps the
        // queue via push_front.
        for p in 0..PRODUCERS {
            let queue = &queue;
            let pool = &pool;
            let produced_done = &produced_done;
            scope.spawn(move || {
                let mut q = queue.register();
                let mut b = pool.register();
                for i in 0..JOBS_PER_PRODUCER {
                    let buf = b.get().unwrap_or_else(|| vec![0u8; 1024]);
                    let payload = buf.len() as u64; // pretend-work
                    b.put(buf); // recycle immediately (cache-hot)
                    let job = Job {
                        id: (p * JOBS_PER_PRODUCER + i) as u64,
                        urgent: i % 1000 == 0,
                        payload,
                    };
                    if job.urgent {
                        q.push_front(job);
                    } else {
                        q.push_back(job);
                    }
                }
                produced_done.fetch_add(1, Ordering::SeqCst);
            });
        }

        // Stage 2: consumers drain the deque from the front.
        for _ in 0..CONSUMERS {
            let queue = &queue;
            let produced_done = &produced_done;
            let consumed = &consumed;
            let urgent_seen = &urgent_seen;
            scope.spawn(move || {
                let mut q = queue.register();
                let mut checksum = 0u64;
                loop {
                    match q.pop_front() {
                        Some(job) => {
                            checksum = checksum.wrapping_add(job.id ^ job.payload);
                            if job.urgent {
                                urgent_seen.fetch_add(1, Ordering::Relaxed);
                            }
                            consumed.fetch_add(1, Ordering::Relaxed);
                        }
                        None => {
                            if produced_done.load(Ordering::SeqCst) == PRODUCERS {
                                // Producers finished; one more look in
                                // case of a late enqueue.
                                if q.pop_front().is_none() {
                                    break;
                                }
                                consumed.fetch_add(1, Ordering::Relaxed);
                            } else {
                                std::thread::yield_now();
                            }
                        }
                    }
                }
                checksum
            });
        }
    });
    let elapsed = start.elapsed();

    let total = PRODUCERS * JOBS_PER_PRODUCER;
    let done = consumed.load(Ordering::Relaxed);
    println!(
        "pipeline: {done}/{total} jobs through 2 stages in {:.1?} ({:.2} Mjobs/s)",
        elapsed,
        done as f64 / elapsed.as_secs_f64() / 1e6
    );
    println!(
        "urgent jobs expedited: {} (pool elimination share: {:.0}%)",
        urgent_seen.load(Ordering::Relaxed),
        pool.pct_eliminated()
    );
    assert_eq!(done, total, "every job must be consumed exactly once");
}
