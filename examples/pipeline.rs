//! A two-stage producer/consumer pipeline on the extension types: a
//! sharded [`SecPool`] as the hot free-buffer pool, a [`SecQueue`] as
//! the stage-1 → stage-2 hand-off (a true FIFO — producers `enqueue`,
//! consumers `dequeue`, batch splices preserve arrival order), and a
//! [`SecDeque`] as the urgent-items lane (urgent jobs `push_front` and
//! are drained before the main queue is consulted).
//!
//! Earlier revisions emulated FIFO by pushing one end of the deque and
//! popping the other; the dedicated queue makes the hand-off's contract
//! explicit and keeps the deque for what actually needs double-ended
//! access — line-jumping.
//!
//! ```text
//! cargo run --release --example pipeline
//! ```
//!
//! [`SecPool`]: sec_repro::ext::SecPool
//! [`SecQueue`]: sec_repro::ext::SecQueue
//! [`SecDeque`]: sec_repro::ext::SecDeque

use sec_repro::ext::{SecDeque, SecPool, SecQueue};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A work item travelling through the pipeline.
struct Job {
    id: u64,
    urgent: bool,
    payload: u64,
}

fn main() {
    const PRODUCERS: usize = 2;
    const CONSUMERS: usize = 2;
    const JOBS_PER_PRODUCER: usize = 50_000;
    const POOL_BUFFERS: usize = 128;

    let pool: SecPool<Vec<u8>> = SecPool::new(2, PRODUCERS + CONSUMERS + 1);
    {
        let mut h = pool.register();
        for _ in 0..POOL_BUFFERS {
            h.put(vec![0u8; 1024]);
        }
    }

    let queue: SecQueue<Job> = SecQueue::new(PRODUCERS + CONSUMERS + 1);
    let urgent_lane: SecDeque<Job> = SecDeque::new(PRODUCERS + CONSUMERS + 1);
    let produced_done = AtomicUsize::new(0);
    let consumed = AtomicUsize::new(0);
    let urgent_seen = AtomicUsize::new(0);

    let start = std::time::Instant::now();
    std::thread::scope(|scope| {
        // Stage 1: producers draw a buffer from the pool, "fill" it,
        // and enqueue a job. Every 1000th job is urgent and takes the
        // deque lane, jumping everything queued in stage 2.
        for p in 0..PRODUCERS {
            let queue = &queue;
            let urgent_lane = &urgent_lane;
            let pool = &pool;
            let produced_done = &produced_done;
            scope.spawn(move || {
                let mut q = queue.register();
                let mut u = urgent_lane.register();
                let mut b = pool.register();
                for i in 0..JOBS_PER_PRODUCER {
                    let buf = b.get().unwrap_or_else(|| vec![0u8; 1024]);
                    let payload = buf.len() as u64; // pretend-work
                    b.put(buf); // recycle immediately (cache-hot)
                    let job = Job {
                        id: (p * JOBS_PER_PRODUCER + i) as u64,
                        urgent: i % 1000 == 0,
                        payload,
                    };
                    if job.urgent {
                        u.push_front(job);
                    } else {
                        q.enqueue(job);
                    }
                }
                produced_done.fetch_add(1, Ordering::SeqCst);
            });
        }

        // Stage 2: consumers drain the urgent lane first, then the
        // FIFO queue.
        for _ in 0..CONSUMERS {
            let queue = &queue;
            let urgent_lane = &urgent_lane;
            let produced_done = &produced_done;
            let consumed = &consumed;
            let urgent_seen = &urgent_seen;
            scope.spawn(move || {
                let mut q = queue.register();
                let mut u = urgent_lane.register();
                let mut checksum = 0u64;
                let process = |job: Job, checksum: &mut u64| {
                    *checksum = checksum.wrapping_add(job.id ^ job.payload);
                    if job.urgent {
                        urgent_seen.fetch_add(1, Ordering::Relaxed);
                    }
                    consumed.fetch_add(1, Ordering::Relaxed);
                };
                loop {
                    match u.pop_front().or_else(|| q.dequeue()) {
                        Some(job) => process(job, &mut checksum),
                        None => {
                            if produced_done.load(Ordering::SeqCst) == PRODUCERS {
                                // Producers finished; one more look in
                                // case of a late hand-off on either lane.
                                match u.pop_front().or_else(|| q.dequeue()) {
                                    Some(job) => process(job, &mut checksum),
                                    None => break,
                                }
                            } else {
                                std::thread::yield_now();
                            }
                        }
                    }
                }
                checksum
            });
        }
    });
    let elapsed = start.elapsed();

    let total = PRODUCERS * JOBS_PER_PRODUCER;
    let done = consumed.load(Ordering::Relaxed);
    println!(
        "pipeline: {done}/{total} jobs through 2 stages in {:.1?} ({:.2} Mjobs/s)",
        elapsed,
        done as f64 / elapsed.as_secs_f64() / 1e6
    );
    println!(
        "urgent jobs expedited: {} (pool elimination: {:.0}%, queue rendezvous hits: {})",
        urgent_seen.load(Ordering::Relaxed),
        pool.pct_eliminated(),
        queue.rendezvous_hits()
    );
    assert_eq!(done, total, "every job must be consumed exactly once");
}
