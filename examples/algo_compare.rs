//! A miniature of the paper's Figure 2: run all six stack algorithms
//! on the mixed workload at this host's parallelism and print a
//! side-by-side comparison.
//!
//! ```text
//! cargo run --release --example algo_compare
//! ```
//!
//! (For full sweeps with CSV output use the figure binaries:
//! `cargo run -p sec-bench --release --bin fig2`.)

use sec_repro::workload::{run_algo, Mix, RunConfig, ALL_COMPETITORS};
use std::time::Duration;

fn main() {
    let threads = sec_repro::sync::topology::hardware_threads().max(2);
    println!("algorithm comparison @ {threads} threads, three mixes, 150 ms each\n");

    for mix in [Mix::UPDATE_100, Mix::UPDATE_50, Mix::UPDATE_10] {
        println!("== {mix} ==");
        let mut rows: Vec<(String, f64)> = Vec::new();
        for algo in ALL_COMPETITORS {
            let cfg = RunConfig {
                duration: Duration::from_millis(150),
                ..RunConfig::new(threads, mix)
            };
            let out = run_algo(algo, &cfg);
            rows.push((algo.label(), out.result.mops()));
            if let Some(rep) = out.sec_report {
                println!(
                    "  {:>8}: {:>8.3} Mops/s   (batch degree {:.1}, elim {:.0}%)",
                    algo.label(),
                    out.result.mops(),
                    rep.batching_degree(),
                    rep.pct_eliminated()
                );
            } else {
                println!("  {:>8}: {:>8.3} Mops/s", algo.label(), out.result.mops());
            }
        }
        rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        println!("  winner: {} ({:.3} Mops/s)\n", rows[0].0, rows[0].1);
    }
}
