//! sec-trace in three acts (DESIGN.md §14): configure tracing on a
//! structure, poll live rates with `TraceSnapshot` while it runs, then
//! drain the event rings into a Chrome-trace JSON you can open in
//! Perfetto.
//!
//! ```text
//! cargo run --release --features trace --example trace
//! ```
//!
//! Built without `--features trace` the example still runs — the
//! snapshot polling path compiles unconditionally — but no recorder
//! exists, so it prints the rebuild hint instead of a dump.

use sec_repro::trace::chrome_trace_json;
use sec_repro::{SecConfig, SecStack, TraceConfig};

fn main() {
    const THREADS: usize = 4;
    const OPS_PER_THREAD: usize = 200_000;

    // Act 1: opt in at construction. Tracing is per-structure, not
    // global; sample 1 in 4 ops so per-op events stay cheap while the
    // per-batch events (freeze, publish, resize) are always recorded.
    let config = SecConfig::new(2, THREADS).trace(TraceConfig::on().sample_shift(2));
    let stack: SecStack<u64> = SecStack::with_config(config);

    let before = stack.trace_snapshot();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let stack = &stack;
            scope.spawn(move || {
                let mut h = stack.register();
                for i in 0..OPS_PER_THREAD {
                    if (t + i) % 2 == 0 {
                        h.push((t * OPS_PER_THREAD + i) as u64);
                    } else {
                        let _ = h.pop();
                    }
                }
            });
        }
    });

    // Act 2: the polling view. Counter deltas between two snapshots —
    // no ring access, no feature flag needed.
    let after = stack.trace_snapshot();
    let rates = after.rates_since(&before);
    println!(
        "{} ops in {:.3} s: {:.0} ops/s, {:.0} batches/s, batching degree {:.1}",
        after.ops - before.ops,
        rates.interval_s,
        rates.ops_per_sec,
        rates.batches_per_sec,
        rates.batching_degree,
    );

    // Act 3: the event view. Only present when the `trace` feature
    // compiled the recorder in.
    let Some(tracer) = stack.tracer() else {
        println!(
            "no trace recorder: rebuild with \
             `cargo run --release --features trace --example trace`"
        );
        return;
    };
    let lat = tracer.op_latency();
    println!(
        "sampled op latency: p50={} ns, p99={} ns, p999={} ns (n={})",
        lat.percentile(50.0),
        lat.percentile(99.0),
        lat.percentile(99.9),
        lat.count(),
    );
    let events = tracer.events();
    let json = chrome_trace_json(&events);
    let path = std::env::temp_dir().join("sec_trace_example.json");
    match std::fs::write(&path, json) {
        Ok(()) => println!(
            "dumped {} events to {} — open in https://ui.perfetto.dev",
            events.len(),
            path.display()
        ),
        Err(e) => eprintln!("could not write dump: {e}"),
    }
}
