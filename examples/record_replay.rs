//! Deterministic workload replay: the same operation sequences, every
//! algorithm, op-for-op comparable results.
//!
//! The throughput figures sample operations randomly, so no two runs
//! execute the same work. `sec_repro::workload::Trace` removes that
//! variable: generate (or hand-craft) per-thread operation sequences
//! once, then replay them against each stack. This example replays
//! three trace shapes —
//!
//! * a seeded 50%-update mix (the "fair comparison" use),
//! * `ping_pong` (strict push/pop alternation: elimination heaven),
//! * `flood_drain` (pushes then pops: combining only, no elimination)
//!
//! — and prints throughput plus SEC's elimination share per shape,
//! showing how the *structure* of the workload (not just its mix
//! ratios) drives SEC's two mechanisms.
//!
//! ```text
//! cargo run --release --example record_replay
//! ```

use sec_repro::baselines::{CcStack, EbStack, FcStack, TreiberStack, TsiStack};
use sec_repro::workload::{replay, Mix, Trace};
use sec_repro::{ConcurrentStack, SecConfig, SecStack};

fn run_all(name: &str, trace: &Trace) {
    println!(
        "## {name}: {} threads, {} ops",
        trace.threads(),
        trace.total_ops()
    );
    let threads = trace.threads();

    // SEC first, with its mechanism split. Sized like the benchmark
    // harness (one spare slot): with the paper's K = 2 and a *small*
    // thread count, exact sizing would give every thread a private
    // aggregator and rule elimination out by construction.
    let sec: SecStack<u64> = SecStack::with_config(SecConfig::new(2, threads + 1));
    let r = replay(&sec, trace);
    let rep = sec.stats().report();
    println!(
        "  {:>4}: {:>8.3} Mops/s   (batch degree {:.1}, {:.0}% eliminated, {:.0}% combined)",
        sec.name(),
        r.mops(),
        rep.batching_degree(),
        rep.pct_eliminated(),
        rep.pct_combined()
    );

    fn one<S: ConcurrentStack<u64>>(stack: S, trace: &Trace) {
        let r = replay(&stack, trace);
        println!("  {:>4}: {:>8.3} Mops/s", stack.name(), r.mops());
    }
    one(TreiberStack::<u64>::new(threads), trace);
    one(EbStack::<u64>::new(threads), trace);
    one(FcStack::<u64>::new(threads), trace);
    one(CcStack::<u64>::new(threads), trace);
    one(TsiStack::<u64>::new(threads), trace);
    println!();
}

fn main() {
    let threads = std::thread::available_parallelism()
        .map_or(2, |n| n.get())
        .clamp(2, 8);

    // 1. The reproducible version of the paper's mixed workload: change
    //    the seed and every algorithm sees the *same* new draw.
    let mixed = Trace::generate(threads, 40_000, Mix::UPDATE_50, 0xC0FFEE);
    run_all("seeded 50%-update mix", &mixed);

    // 2. Alternating push/pop: nearly every operation can eliminate.
    let pong = Trace::ping_pong(threads, 20_000);
    run_all("ping-pong (alternating push/pop)", &pong);

    // 3. Flood then drain: zero elimination possible inside each phase;
    //    the combiners carry everything.
    let flood = Trace::flood_drain(threads, 20_000);
    run_all("flood-then-drain (phase-separated)", &flood);

    println!(
        "note: ping-pong maximizes SEC's elimination share and flood-drain zeroes it —\n\
         the same 50/50 push/pop ratio, opposite mechanism. Workload *structure* matters,\n\
         which is why the trace API exists alongside the random mixes."
    );
}
