//! A shared freelist (object pool) built on the SEC stack — the
//! "shared freelists in garbage collection" use case from the paper's
//! introduction (cf. ZGC [29]).
//!
//! Threads acquire buffers from the pool (pop), use them, and release
//! them back (push). LIFO recycling maximizes the chance that a reused
//! buffer is still cache-resident, and SEC's elimination means an
//! acquire and a concurrent release frequently hand the buffer over
//! without touching the shared structure at all.
//!
//! ```text
//! cargo run --release --example freelist
//! ```

use sec_repro::SecStack;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A pooled buffer: an id plus reusable storage.
struct Buffer {
    id: u32,
    data: Vec<u8>,
}

fn main() {
    const THREADS: usize = 4;
    const POOL_SIZE: usize = 64;
    const BUF_BYTES: usize = 4 * 1024;
    const ACQUIRES_PER_THREAD: usize = 100_000;

    let pool: SecStack<Box<Buffer>> = SecStack::new(THREADS + 1);
    {
        let mut h = pool.register();
        for id in 0..POOL_SIZE as u32 {
            h.push(Box::new(Buffer {
                id,
                data: vec![0; BUF_BYTES],
            }));
        }
    }
    println!(
        "freelist: {POOL_SIZE} x {BUF_BYTES}B buffers, {THREADS} workers, \
         {ACQUIRES_PER_THREAD} acquire/release cycles each"
    );

    let fresh_allocs = AtomicUsize::new(0);
    let start = std::time::Instant::now();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let pool = &pool;
            let fresh_allocs = &fresh_allocs;
            scope.spawn(move || {
                let mut h = pool.register();
                let mut next_id = (1000 * (t + 1)) as u32;
                for i in 0..ACQUIRES_PER_THREAD {
                    // Acquire: reuse a pooled buffer, or allocate fresh
                    // when the pool is momentarily empty (exactly what a
                    // GC worker does on freelist miss).
                    let mut buf = match h.pop() {
                        Some(b) => b,
                        None => {
                            fresh_allocs.fetch_add(1, Ordering::Relaxed);
                            next_id += 1;
                            Box::new(Buffer {
                                id: next_id,
                                data: vec![0; BUF_BYTES],
                            })
                        }
                    };
                    // "Use" the buffer.
                    buf.data[i % BUF_BYTES] = buf.data[i % BUF_BYTES].wrapping_add(1);
                    // Release.
                    h.push(buf);
                }
            });
        }
    });
    let elapsed = start.elapsed();

    let cycles = THREADS * ACQUIRES_PER_THREAD;
    let misses = fresh_allocs.load(Ordering::Relaxed);
    println!(
        "{} cycles in {:.1?} ({:.2} Mcycles/s); freelist misses: {} ({:.3}%)",
        cycles,
        elapsed,
        cycles as f64 / elapsed.as_secs_f64() / 1e6,
        misses,
        100.0 * misses as f64 / cycles as f64
    );

    // Count the pool back out: every buffer (initial + miss-allocated)
    // must be in the pool exactly once.
    let mut h = pool.register();
    let mut count = 0usize;
    let mut ids = std::collections::HashSet::new();
    while let Some(b) = h.pop() {
        assert!(ids.insert(b.id), "buffer {} returned twice", b.id);
        count += 1;
    }
    assert_eq!(count, POOL_SIZE + misses, "buffers conserved");
    println!("pool drained: {count} distinct buffers, conservation holds");

    let report = pool.stats().report();
    println!(
        "elimination saved {:.0}% of pool operations from touching shared state",
        report.pct_eliminated()
    );
}
