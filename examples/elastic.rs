//! Elastic sharding under a bursty load: one adaptive SEC stack serves
//! alternating quiet and storm phases, and the contention monitor moves
//! the active aggregator count to match — no retuning, no rebuild
//! (DESIGN.md §8).
//!
//! ```text
//! cargo run --release --example elastic
//! ```

use sec_repro::{SecConfig, SecStack};
use std::time::Instant;

const MAX_THREADS: usize = 16;
const OPS_PER_THREAD: usize = 60_000;

/// Runs `threads` workers of balanced push/pop against `stack` and
/// returns the phase throughput in Mops/s.
fn phase(stack: &SecStack<u64>, threads: usize) -> f64 {
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let stack = &stack;
            scope.spawn(move || {
                let mut h = stack.register();
                let mut x = (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
                for i in 0..OPS_PER_THREAD {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    if x.is_multiple_of(2) {
                        h.push(i as u64);
                    } else {
                        let _ = h.pop();
                    }
                }
            });
        }
    });
    (threads * OPS_PER_THREAD) as f64 / start.elapsed().as_secs_f64() / 1e6
}

fn main() {
    // Elastic K in [1, 5] with a short decision window so the monitor
    // reacts within each phase of this small demo.
    let config = SecConfig::adaptive_windowed(1, 5, 512, MAX_THREADS);
    let stack: SecStack<u64> = SecStack::with_config(config);

    println!("elastic sharding demo: bursty load on one adaptive SEC stack");
    println!(
        "{:>7} {:>9} {:>10} {:>9} {:>9} {:>14}",
        "phase", "threads", "Mops/s", "batch°", "active K", "grows/shrinks"
    );

    // Quiet, storm, quiet, storm: the interesting transitions are the
    // grow into each storm and the shrink back out of it.
    for (i, threads) in [2usize, MAX_THREADS, 2, MAX_THREADS, 2].iter().enumerate() {
        stack.stats().reset();
        let mops = phase(&stack, *threads);
        let r = stack.stats().report();
        println!(
            "{:>7} {:>9} {:>10.2} {:>9.1} {:>9} {:>14}",
            i,
            threads,
            mops,
            r.batching_degree(),
            stack.active_aggregators(),
            format!("{}/{}", r.grows, r.shrinks),
        );
    }

    let mut h = stack.register();
    let mut leftover = 0u64;
    while h.pop().is_some() {
        leftover += 1;
    }
    println!(
        "drained {leftover} leftover elements; final active K = {}",
        { stack.active_aggregators() }
    );
}
