//! The kill-9 fault-injection harness (ISSUE: crash-durable SEC).
//!
//! For every durable family (stack, queue, counter, map) and every
//! seeded protocol crash point, this test forks the `crash_child`
//! helper bin against a file-backed persistent heap, SIGKILLs it at
//! the armed point (`SEC_CRASH_POINT` × `SEC_CRASH_AFTER`, see the
//! `fault` module), recovers in this process, and checks:
//!
//! * **conservation** — folding the recovered redo log through a
//!   sequential model reproduces exactly the recovered structure's
//!   contents (and every logged result matches the model's);
//! * **detectability** — every handle's in-flight op is classified
//!   `Executed` (with its result), `NeverExecuted`, `TornIntent` or
//!   `None`, and the classification is consistent with the log;
//! * **zero double-applies** — each handle's logged op sequence is a
//!   gap-free 1..=n prefix;
//! * **idempotence** — recovering twice yields the same report, and a
//!   recovery that is itself SIGKILLed mid-scan leaves the heap
//!   recoverable with the same outcome.
//!
//! Sweep size: `CRASH_SEEDS=N` (default 1) multiplies the workload
//! seeds; every seed covers crash points 1..=5 × triggers 1..=13 per
//! family — 65 seeded crash points per family at the default, which is
//! what the acceptance bar counts. A failing case panics with the
//! exact `CRASH_*` replay tuple.

use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::process::Command;

use sec_repro::durable::{
    opcode, DurablePolicy, LoggedOp, OpResult, PendingOutcome, RecoveryReport,
};
use sec_repro::ext::{SecCounter, SecMap, SecQueue};
use sec_repro::SecStack;

const FAMILIES: &[&str] = &["stack", "queue", "counter", "map"];
const THREADS: usize = 3;
const OPS: usize = 400;

/// Crash points the run-mode sweep arms (see `FaultPoint`): 1 =
/// mid-combine, 2 = post-log/pre-commit, 3 = post-commit, 4 =
/// mid-publish, 5 = mid-intent-write. Point 6 (recover-scan) is
/// exercised separately by `kill_9_during_recovery_is_harmless`.
const POINTS: &[u8] = &[1, 2, 3, 4, 5];
const TRIGGERS: std::ops::RangeInclusive<u64> = 1..=13;

fn seeds() -> Vec<u64> {
    let n: u64 = std::env::var("CRASH_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    (0..n.max(1)).map(|i| 0x5EC0 + i * 7919).collect()
}

fn heap_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "sec_crash_{}_{}.heap",
        std::process::id(),
        tag.replace('/', "_")
    ))
}

/// Spawns the child and returns true when it was SIGKILLed (the armed
/// point fired), false when it ran to completion.
fn spawn_child(args: &[&str], point: Option<(u8, u64)>) -> bool {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_crash_child"));
    cmd.args(args);
    if let Some((p, after)) = point {
        cmd.env("SEC_CRASH_POINT", p.to_string());
        cmd.env("SEC_CRASH_AFTER", after.to_string());
    } else {
        cmd.env_remove("SEC_CRASH_POINT");
        cmd.env_remove("SEC_CRASH_AFTER");
    }
    let status = cmd.status().expect("spawn crash_child");
    if status.success() {
        return false;
    }
    #[cfg(unix)]
    {
        use std::os::unix::process::ExitStatusExt;
        assert_eq!(
            status.signal(),
            Some(9),
            "child died abnormally but not by SIGKILL: {status:?}"
        );
    }
    true
}

/// Detectability + zero-double-apply checks shared by every family.
fn check_report(report: &RecoveryReport, ctx: &str) {
    // Per-handle gap-free prefix: op_seqs 1..=n, each exactly once.
    let mut seqs: HashMap<u32, Vec<u64>> = HashMap::new();
    for op in &report.ops {
        seqs.entry(op.handle).or_default().push(op.op_seq);
    }
    for (h, s) in &mut seqs {
        s.sort_unstable();
        for (i, seq) in s.iter().enumerate() {
            assert_eq!(
                *seq,
                i as u64 + 1,
                "{ctx}: handle {h} log is not a gap-free prefix (double-apply or hole)"
            );
        }
    }
    for (h, rec) in report.handles.iter().enumerate() {
        let logged = seqs.get(&(h as u32)).map_or(0, |s| s.len() as u64);
        assert_eq!(
            rec.executed, logged,
            "{ctx}: handle {h} executed-count disagrees with the log"
        );
        match rec.pending {
            PendingOutcome::None | PendingOutcome::TornIntent => {}
            PendingOutcome::Executed { op_seq, result } => {
                let op = report
                    .ops
                    .iter()
                    .find(|o| o.handle == h as u32 && o.op_seq == op_seq)
                    .unwrap_or_else(|| {
                        panic!("{ctx}: handle {h} Executed({op_seq}) not in the log")
                    });
                assert_eq!(
                    op.result, result,
                    "{ctx}: handle {h} Executed result diverges from the log"
                );
            }
            PendingOutcome::NeverExecuted { op_seq } => {
                assert!(
                    !report
                        .ops
                        .iter()
                        .any(|o| o.handle == h as u32 && o.op_seq == op_seq),
                    "{ctx}: handle {h} NeverExecuted({op_seq}) IS in the log"
                );
            }
        }
    }
}

/// Folds the log through the family's sequential model, verifying each
/// logged result, then checks the recovered structure drains to the
/// model's exact final state. Consumes the recovered structure.
fn check_conservation(family: &str, path: &PathBuf, report: &RecoveryReport, ctx: &str) {
    match family {
        "stack" => {
            let mut model: Vec<u64> = Vec::new();
            for op in &report.ops {
                model_stack(&mut model, op, ctx);
            }
            let (s, _) = SecStack::<u64>::recover(DurablePolicy::file(path))
                .unwrap_or_else(|e| panic!("{ctx}: re-recover failed: {e}"));
            let mut h = s.register();
            let mut drained = Vec::new();
            while let Some(v) = h.pop() {
                drained.push(v);
            }
            model.reverse();
            assert_eq!(drained, model, "{ctx}: stack contents diverge from model");
        }
        "queue" => {
            let mut model: VecDeque<u64> = VecDeque::new();
            for op in &report.ops {
                model_queue(&mut model, op, ctx);
            }
            let (q, _) = SecQueue::<u64>::recover(DurablePolicy::file(path))
                .unwrap_or_else(|e| panic!("{ctx}: re-recover failed: {e}"));
            let mut h = q.register();
            let mut drained = Vec::new();
            while let Some(v) = h.dequeue() {
                drained.push(v);
            }
            let model: Vec<u64> = model.into_iter().collect();
            assert_eq!(drained, model, "{ctx}: queue contents diverge from model");
        }
        "counter" => {
            let mut total: u64 = 0;
            for op in &report.ops {
                assert_eq!(
                    op.opcode,
                    opcode::ADD,
                    "{ctx}: foreign opcode in counter log"
                );
                assert_eq!(
                    op.result,
                    OpResult::Value(total),
                    "{ctx}: logged fetch_add result diverges from model"
                );
                total = total.wrapping_add(op.operand);
            }
            let (c, _) = SecCounter::recover(DurablePolicy::file(path))
                .unwrap_or_else(|e| panic!("{ctx}: re-recover failed: {e}"));
            assert_eq!(c.load(), total, "{ctx}: counter total diverges from model");
        }
        "map" => {
            let mut model: HashMap<u64, u64> = HashMap::new();
            for op in &report.ops {
                model_map(&mut model, op, ctx);
            }
            let (m, _) = SecMap::<u64, u64>::recover(DurablePolicy::file(path))
                .unwrap_or_else(|e| panic!("{ctx}: re-recover failed: {e}"));
            assert_eq!(m.len(), model.len(), "{ctx}: map size diverges from model");
            let mut h = m.register();
            for (k, v) in &model {
                assert_eq!(h.get(k), Some(*v), "{ctx}: map key {k} diverges from model");
            }
        }
        other => panic!("unknown family {other}"),
    }
}

fn model_stack(model: &mut Vec<u64>, op: &LoggedOp, ctx: &str) {
    match op.opcode {
        opcode::PUSH => {
            assert_eq!(op.result, OpResult::Unit, "{ctx}: push result");
            model.push(op.operand);
        }
        opcode::POP => {
            let expect = match model.pop() {
                Some(v) => OpResult::Value(v),
                None => OpResult::Empty,
            };
            assert_eq!(op.result, expect, "{ctx}: logged pop diverges from model");
        }
        other => panic!("{ctx}: foreign opcode {other} in stack log"),
    }
}

fn model_queue(model: &mut VecDeque<u64>, op: &LoggedOp, ctx: &str) {
    match op.opcode {
        opcode::ENQUEUE => {
            assert_eq!(op.result, OpResult::Unit, "{ctx}: enqueue result");
            model.push_back(op.operand);
        }
        opcode::DEQUEUE => {
            let expect = match model.pop_front() {
                Some(v) => OpResult::Value(v),
                None => OpResult::Empty,
            };
            assert_eq!(
                op.result, expect,
                "{ctx}: logged dequeue diverges from model"
            );
        }
        other => panic!("{ctx}: foreign opcode {other} in queue log"),
    }
}

fn model_map(model: &mut HashMap<u64, u64>, op: &LoggedOp, ctx: &str) {
    let expect = |prev: Option<u64>| match prev {
        Some(v) => OpResult::Value(v),
        None => OpResult::Empty,
    };
    match op.opcode {
        opcode::MAP_GET => {
            assert_eq!(
                op.result,
                expect(model.get(&op.operand).copied()),
                "{ctx}: logged get diverges from model"
            );
        }
        opcode::MAP_INSERT => {
            let prev = model.insert(op.operand, op.operand2);
            assert_eq!(
                op.result,
                expect(prev),
                "{ctx}: logged insert diverges from model"
            );
        }
        opcode::MAP_REMOVE => {
            let prev = model.remove(&op.operand);
            assert_eq!(
                op.result,
                expect(prev),
                "{ctx}: logged remove diverges from model"
            );
        }
        other => panic!("{ctx}: foreign opcode {other} in map log"),
    }
}

fn recover_report(family: &str, path: &PathBuf, ctx: &str) -> RecoveryReport {
    match family {
        "stack" => {
            SecStack::<u64>::recover(DurablePolicy::file(path))
                .unwrap_or_else(|e| panic!("{ctx}: recover failed: {e}"))
                .1
        }
        "queue" => {
            SecQueue::<u64>::recover(DurablePolicy::file(path))
                .unwrap_or_else(|e| panic!("{ctx}: recover failed: {e}"))
                .1
        }
        "counter" => {
            SecCounter::recover(DurablePolicy::file(path))
                .unwrap_or_else(|e| panic!("{ctx}: recover failed: {e}"))
                .1
        }
        "map" => {
            SecMap::<u64, u64>::recover(DurablePolicy::file(path))
                .unwrap_or_else(|e| panic!("{ctx}: recover failed: {e}"))
                .1
        }
        other => panic!("unknown family {other}"),
    }
}

/// One family's full sweep: every crash point × trigger count × seed.
fn sweep(family: &str) {
    let mut crashed = 0usize;
    let mut cases = 0usize;
    for seed in seeds() {
        for &point in POINTS {
            for after in TRIGGERS {
                cases += 1;
                // The replay tuple: re-run one case by pasting this
                // into the environment of `cargo test crash_`.
                let ctx = format!(
                    "CRASH_FAMILY={family} SEC_CRASH_POINT={point} SEC_CRASH_AFTER={after} CRASH_SEED={seed}"
                );
                let path = heap_path(&format!("{family}_{point}_{after}_{seed}"));
                let _ = std::fs::remove_file(&path);
                let killed = spawn_child(
                    &[
                        "run",
                        family,
                        path.to_str().unwrap(),
                        &THREADS.to_string(),
                        &OPS.to_string(),
                        &seed.to_string(),
                    ],
                    Some((point, after)),
                );
                if killed {
                    crashed += 1;
                }
                // Recover twice: reports must agree (idempotence), and
                // the heap must classify + conserve either way.
                let r1 = recover_report(family, &path, &ctx);
                let r2 = recover_report(family, &path, &ctx);
                assert_eq!(r1.ops, r2.ops, "{ctx}: recovery is not idempotent");
                assert_eq!(
                    r1.handles, r2.handles,
                    "{ctx}: recovery verdicts are not idempotent"
                );
                check_report(&r1, &ctx);
                check_conservation(family, &path, &r1, &ctx);
                let _ = std::fs::remove_file(&path);
            }
        }
    }
    // The sweep is only meaningful if the faults actually fire: every
    // armed point triggers well within the child's workload.
    assert!(
        crashed >= cases * 9 / 10,
        "{family}: only {crashed}/{cases} cases actually crashed — fault arming is broken"
    );
}

#[test]
fn kill_9_sweep_stack() {
    sweep("stack");
}

#[test]
fn kill_9_sweep_queue() {
    sweep("queue");
}

#[test]
fn kill_9_sweep_counter() {
    sweep("counter");
}

#[test]
fn kill_9_sweep_map() {
    sweep("map");
}

/// Satellite 3, second half: SIGKILL *during recovery* (the
/// recover-scan fault point) must leave the heap exactly as
/// recoverable — recovery mutates nothing but idempotent
/// normalizations.
#[test]
fn kill_9_during_recovery_is_harmless() {
    for family in FAMILIES {
        let ctx = format!("CRASH_FAMILY={family} SEC_CRASH_POINT=6");
        let path = heap_path(&format!("recscan_{family}"));
        let _ = std::fs::remove_file(&path);
        // A clean, completed workload (no fault armed in the writer).
        let killed = spawn_child(
            &[
                "run",
                family,
                path.to_str().unwrap(),
                &THREADS.to_string(),
                "120",
                "7",
            ],
            None,
        );
        assert!(!killed, "{ctx}: unarmed child must run to completion");
        let clean = recover_report(family, &path, &ctx);
        assert!(
            clean.replayed_ops() > 0,
            "{ctx}: empty log after a full run"
        );
        // Kill recovery mid-scan at several depths, re-recovering in
        // the parent after each kill.
        for after in [1u64, 5, 20] {
            let killed = spawn_child(
                &["recover", family, path.to_str().unwrap()],
                Some((6, after)),
            );
            assert!(
                killed,
                "{ctx} SEC_CRASH_AFTER={after}: recovery did not reach scan point"
            );
            let again = recover_report(family, &path, &ctx);
            assert_eq!(
                clean.ops, again.ops,
                "{ctx} SEC_CRASH_AFTER={after}: killed recovery changed the log"
            );
            assert_eq!(
                clean.handles, again.handles,
                "{ctx} SEC_CRASH_AFTER={after}: killed recovery changed the verdicts"
            );
        }
        check_report(&clean, &ctx);
        check_conservation(family, &path, &clean, &ctx);
        let _ = std::fs::remove_file(&path);
    }
}
