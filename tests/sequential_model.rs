//! Property-based tests: on a single thread, every implementation must
//! behave exactly like `Vec<T>` for arbitrary operation sequences.

mod common;

use proptest::prelude::*;
use sec_repro::{ConcurrentStack, StackHandle};

/// An abstract operation drawn by proptest.
#[derive(Debug, Clone)]
enum AbstractOp {
    Push(u64),
    Pop,
    Peek,
}

fn op_strategy() -> impl Strategy<Value = AbstractOp> {
    prop_oneof![
        (0u64..1000).prop_map(AbstractOp::Push),
        Just(AbstractOp::Pop),
        Just(AbstractOp::Peek),
    ]
}

/// Replays `ops` against the implementation and a Vec model, asserting
/// identical observable behaviour at every step.
fn matches_model<S: ConcurrentStack<u64>>(stack: &S, name: &str, ops: &[AbstractOp]) {
    let mut h = stack.register();
    let mut model: Vec<u64> = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        match op {
            AbstractOp::Push(v) => {
                h.push(*v);
                model.push(*v);
            }
            AbstractOp::Pop => {
                assert_eq!(h.pop(), model.pop(), "[{name}] op {i}: pop diverged");
            }
            AbstractOp::Peek => {
                assert_eq!(
                    h.peek(),
                    model.last().copied(),
                    "[{name}] op {i}: peek diverged"
                );
            }
        }
    }
    // Final drain must agree too.
    while let Some(expect) = model.pop() {
        assert_eq!(h.pop(), Some(expect), "[{name}] drain diverged");
    }
    assert_eq!(h.pop(), None, "[{name}] must be empty after drain");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn sec_matches_vec_model(ops in prop::collection::vec(op_strategy(), 0..200)) {
        let stack: sec_repro::SecStack<u64> =
            sec_repro::SecStack::with_config(sec_repro::SecConfig::new(2, 1));
        matches_model(&stack, "SEC", &ops);
    }

    #[test]
    fn sec_agg5_matches_vec_model(ops in prop::collection::vec(op_strategy(), 0..200)) {
        let stack: sec_repro::SecStack<u64> =
            sec_repro::SecStack::with_config(sec_repro::SecConfig::new(5, 1));
        matches_model(&stack, "SEC_Agg5", &ops);
    }

    #[test]
    fn treiber_matches_vec_model(ops in prop::collection::vec(op_strategy(), 0..200)) {
        matches_model(&sec_repro::baselines::TreiberStack::new(1), "TRB", &ops);
    }

    #[test]
    fn eb_matches_vec_model(ops in prop::collection::vec(op_strategy(), 0..200)) {
        matches_model(&sec_repro::baselines::EbStack::new(1), "EB", &ops);
    }

    #[test]
    fn fc_matches_vec_model(ops in prop::collection::vec(op_strategy(), 0..200)) {
        matches_model(&sec_repro::baselines::FcStack::new(1), "FC", &ops);
    }

    #[test]
    fn cc_matches_vec_model(ops in prop::collection::vec(op_strategy(), 0..200)) {
        matches_model(&sec_repro::baselines::CcStack::new(1), "CC", &ops);
    }

    #[test]
    fn tsi_matches_vec_model(ops in prop::collection::vec(op_strategy(), 0..200)) {
        matches_model(&sec_repro::baselines::TsiStack::new(1), "TSI", &ops);
    }

    #[test]
    fn treiber_hp_matches_vec_model(ops in prop::collection::vec(op_strategy(), 0..200)) {
        matches_model(&sec_repro::baselines::TreiberHpStack::new(1), "TRB-HP", &ops);
    }

    #[test]
    fn locked_matches_vec_model(ops in prop::collection::vec(op_strategy(), 0..200)) {
        matches_model(&sec_repro::baselines::LockedStack::new(1), "LCK", &ops);
    }

    /// SEC batch accounting invariants under arbitrary single-threaded
    /// sequences: eliminated + combined == ops, and single-threaded
    /// execution cannot eliminate anything (each batch holds one op).
    #[test]
    fn sec_accounting_invariants(ops in prop::collection::vec(op_strategy(), 1..100)) {
        let stack: sec_repro::SecStack<u64> =
            sec_repro::SecStack::with_config(sec_repro::SecConfig::new(2, 1));
        {
            let mut h = stack.register();
            for op in &ops {
                match op {
                    AbstractOp::Push(v) => h.push(*v),
                    AbstractOp::Pop => { h.pop(); }
                    AbstractOp::Peek => { h.peek(); }
                }
            }
        }
        let r = stack.stats().report();
        prop_assert_eq!(r.eliminated + r.combined, r.ops);
        prop_assert_eq!(r.eliminated, 0, "one thread ⇒ one op per batch ⇒ no pairs");
        // Every push/pop announced exactly once (peeks don't batch).
        let updates = ops.iter().filter(|o| !matches!(o, AbstractOp::Peek)).count() as u64;
        prop_assert_eq!(r.ops, updates);
        prop_assert_eq!(r.batches, updates);
    }
}
