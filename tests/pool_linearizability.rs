//! Integration: the `SecPool` extension is linearizable *as a pool*
//! (unordered bag) — checked with the generic Wing–Gong checker against
//! the multiset specification.
//!
//! The pool is deliberately weaker than a stack: `get` may return any
//! live value (shards + stealing destroy LIFO order), so the stack
//! checker would reject its histories. The [`PoolSpec`] contract is the
//! one the module documents: conservation (each put got at most once),
//! no phantom values, and `None` only when empty at the linearization
//! point.

use sec_linearize::spec::pool::{PoolOp, PoolSpec};
use sec_linearize::spec::{check_generic, TimedOp};
use sec_linearize::Recorder;
use sec_repro::ext::SecPool;
use std::sync::Mutex;
use std::thread;

fn record_round(
    threads: usize,
    shards: usize,
    ops: usize,
    round: usize,
) -> Vec<TimedOp<PoolOp<u64>>> {
    let pool: SecPool<u64> = SecPool::new(shards, threads);
    let rec = Recorder::new();
    let events: Mutex<Vec<TimedOp<PoolOp<u64>>>> = Mutex::new(Vec::new());

    thread::scope(|scope| {
        for t in 0..threads {
            let pool = &pool;
            let rec = &rec;
            let events = &events;
            scope.spawn(move || {
                let mut h = pool.register();
                let mut local = Vec::with_capacity(ops);
                for i in 0..ops {
                    let choice = (t * 5 + i * 3 + round) % 4;
                    let invoke = rec.now();
                    let op = if choice < 2 {
                        let v = (round * 1_000_000 + t * 1_000 + i) as u64;
                        h.put(v);
                        PoolOp::Put(v)
                    } else {
                        PoolOp::Get(h.get())
                    };
                    let response = rec.now();
                    local.push(TimedOp {
                        op,
                        invoke,
                        response,
                    });
                }
                events.lock().unwrap().extend(local);
            });
        }
    });
    events.into_inner().unwrap()
}

#[test]
fn pool_histories_are_linearizable_single_shard() {
    for round in 0..10 {
        let history = record_round(3, 1, 7, round);
        check_generic::<PoolSpec<u64>>(&history).unwrap_or_else(|e| {
            panic!("round {round}: pool history not linearizable: {e}\n{history:#?}")
        });
    }
}

#[test]
fn pool_histories_are_linearizable_multi_shard() {
    for round in 0..10 {
        let history = record_round(3, 2, 7, round);
        check_generic::<PoolSpec<u64>>(&history).unwrap_or_else(|e| {
            panic!("round {round}: pool history not linearizable: {e}\n{history:#?}")
        });
    }
}

#[test]
fn pool_two_thread_histories_are_linearizable() {
    for round in 0..15 {
        let history = record_round(2, 2, 10, round);
        check_generic::<PoolSpec<u64>>(&history).unwrap_or_else(|e| {
            panic!("round {round}: pool history not linearizable: {e}\n{history:#?}")
        });
    }
}

#[test]
fn pool_sequential_conservation_long_run() {
    // Single thread, many shards: everything put must come back out
    // exactly once, and the final gets must drain to None.
    let pool: SecPool<u64> = SecPool::new(4, 1);
    let mut h = pool.register();
    let n = 5_000u64;
    for v in 0..n {
        h.put(v);
    }
    let mut seen = vec![false; n as usize];
    for _ in 0..n {
        let v = h.get().expect("pool must not be empty yet");
        assert!(!seen[v as usize], "value {v} returned twice");
        seen[v as usize] = true;
    }
    assert_eq!(h.get(), None);
    assert!(seen.iter().all(|&s| s));
}
