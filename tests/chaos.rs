//! Integration: schedule-perturbation ("chaos") tests. Threads inject
//! random sleeps and yields between and *around* operations, producing
//! stragglers that stress exactly the paths a uniform benchmark rarely
//! hits: freezers that freeze micro-batches while half the announcers
//! are asleep, combiners waiting on a descheduled slot writer, EBR
//! epochs pinned by sleeping readers, TSI pools whose owners vanish
//! mid-run.

mod common;

use sec_repro::StackHandle;
use std::collections::HashSet;
use std::thread;
use std::time::Duration;

/// xorshift for deterministic-but-messy schedules.
struct Chaos(u64);
impl Chaos {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn maybe_disturb(&mut self) {
        match self.next() % 50 {
            0 => thread::sleep(Duration::from_micros(self.next() % 300)),
            1..=4 => thread::yield_now(),
            _ => {}
        }
    }
}

#[test]
fn all_stacks_survive_straggler_schedules() {
    with_all_stacks!(7, |stack, name| {
        const THREADS: usize = 6;
        const PER: usize = 400;
        let popped: Vec<Vec<u64>> = thread::scope(|scope| {
            (0..THREADS)
                .map(|t| {
                    let stack = &stack;
                    scope.spawn(move || {
                        let mut chaos = Chaos((t as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                        let mut h = stack.register();
                        let mut got = Vec::new();
                        for i in 0..PER {
                            chaos.maybe_disturb();
                            if chaos.next().is_multiple_of(2) {
                                h.push((t * PER + i) as u64);
                            } else if let Some(v) = h.pop() {
                                got.push(v);
                            }
                            chaos.maybe_disturb();
                        }
                        got
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|j| j.join().unwrap())
                .collect()
        });

        let mut seen: HashSet<u64> = HashSet::new();
        for v in popped.into_iter().flatten() {
            assert!(seen.insert(v), "[{name}] duplicate {v} under chaos");
        }
        let mut h = stack.register();
        while let Some(v) = h.pop() {
            assert!(seen.insert(v), "[{name}] duplicate {v} in drain");
        }
        // Not all values get pushed (random mix); just require no
        // duplicates and no invented values.
        for v in &seen {
            let t = *v as usize / PER;
            let i = *v as usize % PER;
            assert!(t < THREADS && i < PER, "[{name}] invented value {v}");
        }
    });
}

#[test]
fn sec_survives_sleepy_freezers_and_combiners() {
    // A dedicated SEC torture: one aggregator so every thread shares
    // batches, threads sleep *between announce-heavy bursts*, forcing
    // batches to freeze at ragged sizes.
    let stack: sec_repro::SecStack<u64> =
        sec_repro::SecStack::with_config(sec_repro::SecConfig::new(1, 8));
    thread::scope(|scope| {
        for t in 0..8u64 {
            let stack = &stack;
            scope.spawn(move || {
                let mut chaos = Chaos(t * 31 + 7);
                let mut h = stack.register();
                for i in 0..300u64 {
                    // Bursts of 8 ops, then a sleep.
                    if i % 8 == 0 {
                        thread::sleep(Duration::from_micros(chaos.next() % 200));
                    }
                    if chaos.next().is_multiple_of(2) {
                        h.push(i);
                    } else {
                        h.pop();
                    }
                }
            });
        }
    });
    let r = stack.stats().report();
    assert_eq!(r.eliminated + r.combined, r.ops, "accounting under chaos");
}

#[test]
fn reclamation_makes_progress_despite_sleepy_pinners() {
    // Sleeping threads hold pins for a while, stalling the epoch; the
    // collector must still reclaim once they move on (no permanent
    // leak under stragglers).
    let stack: sec_repro::SecStack<u64> =
        sec_repro::SecStack::with_config(sec_repro::SecConfig::new(2, 5));
    thread::scope(|scope| {
        for t in 0..4u64 {
            let stack = &stack;
            scope.spawn(move || {
                let mut chaos = Chaos(t + 1);
                let mut h = stack.register();
                for i in 0..2_000u64 {
                    h.push(i);
                    let _ = h.pop();
                    if chaos.next().is_multiple_of(256) {
                        thread::sleep(Duration::from_micros(100));
                    }
                }
            });
        }
    });
    let st = stack.reclaim_stats();
    assert!(st.retired > 0);
    // With recycling on (the default), quiesced blocks are cached for
    // reuse rather than freed — both count as reclamation progress.
    assert!(
        (st.freed + st.cached) * 2 >= st.retired,
        "most garbage must be reclaimed despite stragglers: {st:?}"
    );
}
