//! Integration: the `SecDeque` extension is linearizable — checked
//! with the generic Wing–Gong checker against the sequential deque
//! specification.

use sec_linearize::spec::deque::{DequeOp, DequeSpec};
use sec_linearize::spec::{check_generic, TimedOp};
use sec_linearize::Recorder;
use sec_repro::ext::SecDeque;
use std::collections::VecDeque;
use std::sync::Mutex;
use std::thread;

fn record_round(threads: usize, ops: usize, round: usize) -> Vec<TimedOp<DequeOp<u64>>> {
    let deque: SecDeque<u64> = SecDeque::new(threads);
    let rec = Recorder::new();
    let events: Mutex<Vec<TimedOp<DequeOp<u64>>>> = Mutex::new(Vec::new());

    thread::scope(|scope| {
        for t in 0..threads {
            let deque = &deque;
            let rec = &rec;
            let events = &events;
            scope.spawn(move || {
                let mut h = deque.register();
                let mut local = Vec::with_capacity(ops);
                for i in 0..ops {
                    let choice = (t * 7 + i * 3 + round) % 6;
                    let invoke = rec.now();
                    let op = match choice {
                        0 => {
                            let v = (round * 1_000_000 + t * 1_000 + i) as u64;
                            h.push_front(v);
                            DequeOp::PushFront(v)
                        }
                        1 | 2 => {
                            let v = (round * 1_000_000 + t * 1_000 + i) as u64;
                            h.push_back(v);
                            DequeOp::PushBack(v)
                        }
                        3 | 4 => DequeOp::PopFront(h.pop_front()),
                        _ => DequeOp::PopBack(h.pop_back()),
                    };
                    let response = rec.now();
                    local.push(TimedOp {
                        op,
                        invoke,
                        response,
                    });
                }
                events.lock().unwrap().extend(local);
            });
        }
    });
    events.into_inner().unwrap()
}

#[test]
fn deque_histories_are_linearizable() {
    for round in 0..10 {
        let history = record_round(3, 7, round);
        check_generic::<DequeSpec<u64>>(&history).unwrap_or_else(|e| {
            panic!("round {round}: deque history not linearizable: {e}\n{history:#?}")
        });
    }
}

#[test]
fn deque_two_thread_histories_are_linearizable() {
    for round in 0..15 {
        let history = record_round(2, 10, round);
        check_generic::<DequeSpec<u64>>(&history).unwrap_or_else(|e| {
            panic!("round {round}: deque history not linearizable: {e}\n{history:#?}")
        });
    }
}

#[test]
fn deque_sequential_model_long_run() {
    // Single-threaded: must agree with VecDeque exactly, op by op.
    let deque: SecDeque<u64> = SecDeque::new(1);
    let mut h = deque.register();
    let mut model: VecDeque<u64> = VecDeque::new();
    let mut x = 0xDECADE_u64 | 1;
    for i in 0..5_000u64 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        match x % 4 {
            0 => {
                h.push_front(i);
                model.push_front(i);
            }
            1 => {
                h.push_back(i);
                model.push_back(i);
            }
            2 => assert_eq!(h.pop_front(), model.pop_front(), "op {i}"),
            _ => assert_eq!(h.pop_back(), model.pop_back(), "op {i}"),
        }
    }
}
