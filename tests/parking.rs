//! Integration: the spin-then-park wait subsystem (DESIGN.md §11).
//!
//! Three layers of proof, from primitive to protocol:
//!
//! 1. **No-lost-wakeup on the primitives** — both orderable
//!    interleavings (wake-before-park, park-before-wake) directly on
//!    [`WaitCell`]/[`WaitQueue`], plus a seeded-interleaving sweep in
//!    the style of `tests/schedules.rs`: the notifier's position
//!    relative to the waiter's registration is permuted by
//!    seed-derived yield schedules, and every run must terminate.
//!    `SCHEDULE_SEEDS=N` widens the sweep (the nightly CI job raises
//!    it); `SCHEDULE_SEED=s` replays one seed.
//! 2. **Oversubscribed liveness** — all four families (stack, queue,
//!    deque, pool) at 4× the host's hardware threads under each of the
//!    three [`WaitPolicy`] settings: mixed workloads must complete.
//!    This is the tier-1 oversubscription smoke gate.
//! 3. **Semantics under forced parking** — conservation for all four
//!    families and small-history linearizability for the stack with
//!    `SpinThenPark { spin_rounds: 0 }` forced on (the minimum spin
//!    phase maximizes park traffic, so a lost wakeup or a broken
//!    handshake surfaces as a hang or a checker violation), plus the
//!    counter plumbing: parks/wakes must reach `SecStats` reports.

use sec_repro::ext::{SecDeque, SecPool, SecQueue};
use sec_repro::linearize::{check_conservation, check_history, Event, Op, Recorder};
use sec_repro::sync::{WaitCell, WaitPolicy, WaitQueue, WaitStats};
use sec_repro::{SecConfig, SecStack};
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;

/// The policy that parks the hardest: no extra snoozes before the park
/// phase. Every semantics test forces it to maximize park traffic.
const PARK_NOW: WaitPolicy = WaitPolicy::SpinThenPark { spin_rounds: 0 };

const ALL_POLICIES: [WaitPolicy; 3] = [
    WaitPolicy::Spin,
    WaitPolicy::SpinThenYield,
    WaitPolicy::spin_then_park(),
];

const SEED_BASE: u64 = 0x9A4C_0FFE;

fn sweep_seeds(default_count: u64) -> Vec<u64> {
    if let Ok(s) = std::env::var("SCHEDULE_SEED") {
        let seed = s.parse().expect("SCHEDULE_SEED must be a u64");
        return vec![seed];
    }
    let n = std::env::var("SCHEDULE_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default_count);
    (0..n).map(|i| SEED_BASE.wrapping_add(i)).collect()
}

/// Cheap deterministic xorshift so the interleaving sweeps need no RNG
/// crate in the test's dependency surface.
fn xorshift(x: &mut u64) -> u64 {
    *x ^= *x << 13;
    *x ^= *x >> 7;
    *x ^= *x << 17;
    *x
}

// ---------------------------------------------------------------------
// 1. No-lost-wakeup on the primitives
// ---------------------------------------------------------------------

#[test]
fn wait_cell_wake_before_park_interleaving() {
    // The notification fully precedes the wait: the waiter must
    // consume it without parking (a lost wakeup here would park
    // forever — there is no later notify).
    let cell = WaitCell::new();
    cell.notify();
    assert_eq!(cell.wait(), 0, "no park, no spurious wakeups");
    assert!(!cell.is_notified(), "the wait consumed the notification");
}

#[test]
fn wait_cell_park_before_wake_interleaving() {
    // The waiter registers and parks first; the notifier is delayed
    // until the waiter has provably parked at least once (we can't
    // observe the park directly, so we bound it: the waiter sets a
    // flag right before calling wait, and the notifier yields past
    // it). The join proves the wakeup arrived.
    let cell = Arc::new(WaitCell::new());
    let entered = Arc::new(AtomicBool::new(false));
    let (c, e) = (Arc::clone(&cell), Arc::clone(&entered));
    let waiter = thread::spawn(move || {
        e.store(true, Ordering::Release);
        c.wait()
    });
    while !entered.load(Ordering::Acquire) {
        thread::yield_now();
    }
    for _ in 0..20 {
        thread::yield_now();
    }
    cell.notify();
    waiter.join().expect("parked waiter woke");
}

#[test]
fn wait_cell_seeded_interleaving_sweep() {
    // Permute where the notifier fires relative to the waiter's
    // registration/park: seed-derived yield counts on both sides move
    // the race point through every reachable interleaving class.
    // Termination of every run IS the no-lost-wakeup proof.
    for seed in sweep_seeds(64) {
        let mut x = seed | 1;
        let waiter_delay = xorshift(&mut x) % 8;
        let notifier_delay = xorshift(&mut x) % 8;
        let cell = Arc::new(WaitCell::new());
        let c = Arc::clone(&cell);
        let waiter = thread::spawn(move || {
            for _ in 0..waiter_delay {
                thread::yield_now();
            }
            c.wait()
        });
        for _ in 0..notifier_delay {
            thread::yield_now();
        }
        cell.notify();
        waiter.join().unwrap_or_else(|_| {
            panic!("seed {seed}: waiter hung; replay with SCHEDULE_SEED={seed}")
        });
    }
}

#[test]
fn wait_queue_seeded_no_lost_wakeup_sweep() {
    // The keyed queue under the strict handshake contract: the
    // notifier makes the condition true (Release) before notifying.
    // Seeds permute both sides' progress; with spin_rounds = 0 the
    // waiter parks on nearly every run.
    for seed in sweep_seeds(64) {
        let mut x = seed | 1;
        let waiter_delay = xorshift(&mut x) % 6;
        let notifier_delay = xorshift(&mut x) % 6;
        let q = WaitQueue::new();
        let stats = WaitStats::new();
        let flag = AtomicBool::new(false);
        let key = 0xB47C4_usize;
        thread::scope(|s| {
            s.spawn(|| {
                for _ in 0..waiter_delay {
                    thread::yield_now();
                }
                q.wait_until(key, PARK_NOW, &stats, || flag.load(Ordering::Acquire));
            });
            for _ in 0..notifier_delay {
                thread::yield_now();
            }
            // A wrong-key notify first: it must not satisfy the waiter
            // (its condition is still false — at worst it re-parks and
            // the spurious counter ticks).
            q.notify_key(key + 1, &stats);
            flag.store(true, Ordering::Release);
            q.notify_key(key, &stats);
        });
        assert_eq!(
            q.registered(),
            0,
            "seed {seed}: waiter left a stale registration"
        );
        assert!(
            stats.unparks() <= stats.parks() + 1,
            "seed {seed}: more unparks than possible waits"
        );
    }
}

#[test]
fn wait_queue_spurious_wakeups_reregister_and_survive() {
    // Force a genuinely spurious wakeup: once the waiter has parked
    // (observed via the parks counter), unpark it through notify_all
    // while its condition is still false. It must re-register and
    // re-park; the final genuine notify must still land.
    let q = Arc::new(WaitQueue::new());
    let stats = Arc::new(WaitStats::new());
    let flag = Arc::new(AtomicBool::new(false));
    let (q2, s2, f2) = (Arc::clone(&q), Arc::clone(&stats), Arc::clone(&flag));
    let waiter = thread::spawn(move || {
        q2.wait_until(7, PARK_NOW, &s2, || f2.load(Ordering::Acquire));
    });
    // Wait until the waiter has parked at least once.
    while stats.parks() == 0 {
        thread::yield_now();
    }
    // Spurious wake: condition still false.
    q.notify_all(&stats);
    // Give it time to wake, observe false, and re-park.
    for _ in 0..50 {
        thread::yield_now();
    }
    flag.store(true, Ordering::Release);
    q.notify_key(7, &stats);
    waiter.join().expect("waiter survived the spurious wakeup");
    assert!(stats.parks() >= 1, "the waiter parked");
    assert!(
        stats.spurious() >= 1,
        "the forced wrong-condition wakeup was counted spurious: {stats:?}"
    );
}

// ---------------------------------------------------------------------
// 2. Oversubscribed liveness: 4× hardware threads, all families,
//    all policies
// ---------------------------------------------------------------------

/// 4× the hardware threads, with a floor of 4 so the test is a real
/// oversubscription test even on a 1-core CI box and a cap of 16 so a
/// 32-core host doesn't turn it into a stress run.
fn oversub_threads() -> usize {
    (4 * sec_repro::sync::topology::hardware_threads().max(1)).clamp(4, 16)
}

#[test]
fn oversubscribed_liveness_all_families_all_policies() {
    let threads = oversub_threads();
    // Pure Spin is the pathological policy here (each blocked wait can
    // burn a scheduling quantum on an oversubscribed host), so it gets
    // a smaller script; completion, not speed, is what's asserted.
    for policy in ALL_POLICIES {
        let ops = if policy == WaitPolicy::Spin { 60 } else { 200 };

        let stack: SecStack<u64> =
            SecStack::with_config(SecConfig::new(2, threads).wait_policy(policy));
        thread::scope(|s| {
            for t in 0..threads {
                let stack = &stack;
                s.spawn(move || {
                    let mut h = stack.register();
                    for i in 0..ops {
                        if (t + i) % 3 < 2 {
                            h.push((t * ops + i) as u64);
                        } else {
                            let _ = h.pop();
                        }
                    }
                });
            }
        });

        let queue: SecQueue<u64> = SecQueue::new(threads).wait_policy(policy);
        thread::scope(|s| {
            for t in 0..threads {
                let queue = &queue;
                s.spawn(move || {
                    let mut h = queue.register();
                    for i in 0..ops {
                        if (t + i) % 3 < 2 {
                            h.enqueue((t * ops + i) as u64);
                        } else {
                            let _ = h.dequeue();
                        }
                    }
                });
            }
        });

        let deque: SecDeque<u64> = SecDeque::new(threads).wait_policy(policy);
        thread::scope(|s| {
            for t in 0..threads {
                let deque = &deque;
                s.spawn(move || {
                    let mut h = deque.register();
                    for i in 0..ops {
                        match (t + i) % 4 {
                            0 => h.push_front((t * ops + i) as u64),
                            1 => h.push_back((t * ops + i) as u64),
                            2 => {
                                let _ = h.pop_front();
                            }
                            _ => {
                                let _ = h.pop_back();
                            }
                        }
                    }
                });
            }
        });

        let pool: SecPool<u64> = SecPool::with_wait(2, threads, policy);
        thread::scope(|s| {
            for t in 0..threads {
                let pool = &pool;
                s.spawn(move || {
                    let mut h = pool.register();
                    for i in 0..ops {
                        h.put((t * ops + i) as u64);
                        if i % 2 == 0 {
                            let _ = h.get();
                        }
                    }
                });
            }
        });
    }
}

// ---------------------------------------------------------------------
// 3. Semantics and counters under forced parking
// ---------------------------------------------------------------------

#[test]
fn conservation_under_forced_park_all_families() {
    const THREADS: usize = 6;
    const PER: usize = 400;

    // Stack: every pushed value is popped or drained exactly once.
    let stack: SecStack<u64> =
        SecStack::with_config(SecConfig::new(2, THREADS + 1).wait_policy(PARK_NOW));
    let got: Vec<Vec<u64>> = thread::scope(|scope| {
        (0..THREADS)
            .map(|t| {
                let stack = &stack;
                scope.spawn(move || {
                    let mut h = stack.register();
                    let mut got = Vec::new();
                    for i in 0..PER {
                        h.push((t * PER + i) as u64);
                        if i % 3 != 0 {
                            if let Some(v) = h.pop() {
                                got.push(v);
                            }
                        }
                    }
                    got
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|j| j.join().unwrap())
            .collect()
    });
    let mut seen: HashSet<u64> = HashSet::new();
    for v in got.into_iter().flatten() {
        assert!(seen.insert(v), "stack: duplicate {v}");
    }
    let mut h = stack.register();
    while let Some(v) = h.pop() {
        assert!(seen.insert(v), "stack: duplicate {v} in drain");
    }
    drop(h);
    assert_eq!(seen.len(), THREADS * PER, "stack: values lost");

    // Queue.
    let queue: SecQueue<u64> = SecQueue::new(THREADS + 1).wait_policy(PARK_NOW);
    let got: Vec<Vec<u64>> = thread::scope(|scope| {
        (0..THREADS)
            .map(|t| {
                let queue = &queue;
                scope.spawn(move || {
                    let mut h = queue.register();
                    let mut got = Vec::new();
                    for i in 0..PER {
                        h.enqueue((t * PER + i) as u64);
                        if i % 3 != 0 {
                            if let Some(v) = h.dequeue() {
                                got.push(v);
                            }
                        }
                    }
                    got
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|j| j.join().unwrap())
            .collect()
    });
    let mut seen: HashSet<u64> = HashSet::new();
    for v in got.into_iter().flatten() {
        assert!(seen.insert(v), "queue: duplicate {v}");
    }
    let mut h = queue.register();
    while let Some(v) = h.dequeue() {
        assert!(seen.insert(v), "queue: duplicate {v} in drain");
    }
    drop(h);
    assert_eq!(seen.len(), THREADS * PER, "queue: values lost");

    // Deque (both ends).
    let deque: SecDeque<u64> = SecDeque::new(THREADS + 1).wait_policy(PARK_NOW);
    let got: Vec<Vec<u64>> = thread::scope(|scope| {
        (0..THREADS)
            .map(|t| {
                let deque = &deque;
                scope.spawn(move || {
                    let mut h = deque.register();
                    let mut got = Vec::new();
                    for i in 0..PER {
                        let v = (t * PER + i) as u64;
                        match (t + i) % 4 {
                            0 => h.push_front(v),
                            1 => h.push_back(v),
                            2 => {
                                if let Some(x) = h.pop_front() {
                                    got.push(x);
                                }
                            }
                            _ => {
                                if let Some(x) = h.pop_back() {
                                    got.push(x);
                                }
                            }
                        }
                    }
                    got
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|j| j.join().unwrap())
            .collect()
    });
    let mut seen: HashSet<u64> = HashSet::new();
    let mut popped = 0usize;
    for v in got.into_iter().flatten() {
        assert!(seen.insert(v), "deque: duplicate {v}");
        popped += 1;
    }
    let mut h = deque.register();
    let mut remaining = 0usize;
    while let Some(v) = h.pop_front() {
        assert!(seen.insert(v), "deque: duplicate {v} in drain");
        remaining += 1;
    }
    drop(h);
    let pushed: usize = (0..THREADS)
        .map(|t| (0..PER).filter(|i| (t + i) % 4 < 2).count())
        .sum();
    assert_eq!(popped + remaining, pushed, "deque: values conserved");

    // Pool (across shards).
    let pool: SecPool<u64> = SecPool::with_wait(2, THREADS + 1, PARK_NOW);
    let got: Vec<Vec<u64>> = thread::scope(|scope| {
        (0..THREADS)
            .map(|t| {
                let pool = &pool;
                scope.spawn(move || {
                    let mut h = pool.register();
                    let mut got = Vec::new();
                    for i in 0..PER {
                        h.put((t * PER + i) as u64);
                        if i % 2 == 0 {
                            if let Some(v) = h.get() {
                                got.push(v);
                            }
                        }
                    }
                    got
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|j| j.join().unwrap())
            .collect()
    });
    let mut seen: HashSet<u64> = HashSet::new();
    for v in got.into_iter().flatten() {
        assert!(seen.insert(v), "pool: duplicate {v}");
    }
    let mut h = pool.register();
    while let Some(v) = h.get() {
        assert!(seen.insert(v), "pool: duplicate {v} in drain");
    }
    drop(h);
    assert_eq!(seen.len(), THREADS * PER, "pool: values lost");
}

#[test]
fn small_histories_linearizable_under_forced_park() {
    // The schedules.rs pattern with the wait policy pinned to maximum
    // parking: small seeded scripts, full Wing–Gong check per history.
    for seed in sweep_seeds(24) {
        let mut x = seed | 1;
        let threads = 2 + (xorshift(&mut x) % 2) as usize;
        let ops = 5 + (xorshift(&mut x) % 4) as usize;
        let stack: SecStack<u64> =
            SecStack::with_config(SecConfig::new(2, threads).wait_policy(PARK_NOW));
        let rec = Recorder::new();
        let events: Mutex<Vec<Event<u64>>> = Mutex::new(Vec::new());
        thread::scope(|scope| {
            for t in 0..threads {
                let stack = &stack;
                let rec = &rec;
                let events = &events;
                let mut x = seed.wrapping_mul(t as u64 + 1) | 1;
                scope.spawn(move || {
                    let mut h = stack.register();
                    let mut local = Vec::new();
                    let mut pushed = 0usize;
                    for _ in 0..ops {
                        if xorshift(&mut x).is_multiple_of(4) {
                            thread::yield_now();
                        }
                        let invoke = rec.now();
                        let op = match xorshift(&mut x) % 5 {
                            0 | 1 => {
                                let v = (t * 1_000_000 + pushed) as u64;
                                pushed += 1;
                                h.push(v);
                                Op::Push(v)
                            }
                            2 | 3 => Op::Pop(h.pop()),
                            _ => Op::Peek(h.peek()),
                        };
                        let response = rec.now();
                        local.push(Event {
                            thread: t,
                            op,
                            invoke,
                            response,
                        });
                    }
                    events.lock().unwrap().extend(local);
                });
            }
        });
        let history = events.into_inner().unwrap();
        check_conservation(&history).unwrap_or_else(|e| {
            panic!("seed {seed}: conservation violated under forced park: {e}")
        });
        check_history(&history).unwrap_or_else(|e| {
            panic!("seed {seed}: history not linearizable under forced park: {e}\n{history:#?}")
        });
    }
}

#[test]
fn park_and_wake_counters_reach_reports() {
    // Stack and queue: under forced parking with real contention, the
    // park/wake counters must populate, and wakes can never exceed
    // what was ever registered (parks + the waits that deregistered
    // themselves — conservatively, parks plus one registration per
    // wait). Contention is manufactured, not hoped for: a single
    // aggregator plus a widened freezer yield window means the seq-0
    // announcer donates its quantum mid-protocol, so on any host —
    // including a 1-core one, where short rounds otherwise run each
    // thread to completion with zero overlap — other threads announce
    // into the open batch and park on it. The retry loop stays as a
    // backstop so no single scheduling outcome decides the assertion.
    let threads = oversub_threads();
    let mut stack_parks = 0;
    let mut stack_wakes = 0;
    for _ in 0..20 {
        let stack: SecStack<u64> = SecStack::with_config(
            SecConfig::new(1, threads)
                .wait_policy(PARK_NOW)
                .freezer_yields(4),
        );
        thread::scope(|s| {
            for t in 0..threads {
                let stack = &stack;
                s.spawn(move || {
                    let mut h = stack.register();
                    for i in 0..300 {
                        if (t + i) % 3 < 2 {
                            h.push(i as u64);
                        } else {
                            let _ = h.pop();
                        }
                    }
                });
            }
        });
        let r = stack.stats().report();
        stack_parks += r.parks;
        stack_wakes += r.wakes;
        if stack_parks > 0 && stack_wakes > 0 {
            break;
        }
    }
    assert!(stack_parks > 0, "stack: no park recorded in 20 rounds");
    assert!(stack_wakes > 0, "stack: no wake recorded in 20 rounds");

    let mut queue_parks = 0;
    let mut queue_wakes = 0;
    for _ in 0..20 {
        let queue: SecQueue<u64> = SecQueue::new(threads)
            .wait_policy(PARK_NOW)
            .freezer_yields(4);
        thread::scope(|s| {
            for t in 0..threads {
                let queue = &queue;
                s.spawn(move || {
                    let mut h = queue.register();
                    for i in 0..300 {
                        if (t + i) % 3 < 2 {
                            h.enqueue(i as u64);
                        } else {
                            let _ = h.dequeue();
                        }
                    }
                });
            }
        });
        let r = queue.stats().report();
        queue_parks += r.parks;
        queue_wakes += r.wakes;
        if queue_parks > 0 && queue_wakes > 0 {
            break;
        }
    }
    assert!(queue_parks > 0, "queue: no park recorded in 20 rounds");
    assert!(queue_wakes > 0, "queue: no wake recorded in 20 rounds");
}

#[test]
fn deque_and_pool_surface_wait_counters() {
    let threads = oversub_threads();
    let deque: SecDeque<u64> = SecDeque::new(threads).wait_policy(PARK_NOW);
    thread::scope(|s| {
        for t in 0..threads {
            let deque = &deque;
            s.spawn(move || {
                let mut h = deque.register();
                for i in 0..300 {
                    if (t + i) % 2 == 0 {
                        h.push_back(i as u64);
                    } else {
                        let _ = h.pop_front();
                    }
                }
            });
        }
    });
    // The deque newly exposes SecStats: batches must have been
    // recorded, and the wait counters must be coherent (every wake
    // unparked something that parked or was about to).
    let r = deque.stats().report();
    assert!(r.batches > 0, "deque records batches now");
    assert_eq!(r.eliminated + r.combined, r.ops);

    let pool: SecPool<u64> = SecPool::with_wait(2, threads, PARK_NOW);
    thread::scope(|s| {
        for t in 0..threads {
            let pool = &pool;
            s.spawn(move || {
                let mut h = pool.register();
                for i in 0..200 {
                    h.put((t * 200 + i) as u64);
                    let _ = h.get();
                }
            });
        }
    });
    let (parks, _wakes, spurious) = pool.wait_counters();
    // Counts are scheduling-dependent; assert the invariant that is
    // not: a spurious wakeup is counted only after a park returned.
    assert!(
        spurious <= parks,
        "pool: spurious ({spurious}) cannot exceed parks ({parks})"
    );
    let dr = deque.stats().report();
    assert!(
        dr.spurious_wakes <= dr.parks,
        "deque: spurious cannot exceed parks: {dr:?}"
    );
}

#[test]
fn policies_are_configurable_per_structure() {
    // The builder surface: every family accepts every policy and
    // still round-trips a value.
    for policy in ALL_POLICIES {
        let stack: SecStack<u64> = SecStack::with_config(SecConfig::new(1, 1).wait_policy(policy));
        assert_eq!(stack.config().wait, policy);
        let mut h = stack.register();
        h.push(1);
        assert_eq!(h.pop(), Some(1));
        drop(h);

        let queue: SecQueue<u64> = SecQueue::new(1).wait_policy(policy);
        assert_eq!(queue.config().wait, policy);
        let mut h = queue.register();
        h.enqueue(2);
        assert_eq!(h.dequeue(), Some(2));
        drop(h);

        let deque: SecDeque<u64> = SecDeque::new(1).wait_policy(policy);
        let mut h = deque.register();
        h.push_front(3);
        assert_eq!(h.pop_back(), Some(3));
        drop(h);

        let pool: SecPool<u64> = SecPool::with_wait(1, 1, policy);
        let mut h = pool.register();
        h.put(4);
        assert_eq!(h.get(), Some(4));
    }
}
