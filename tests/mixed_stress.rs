//! Integration: mixed-operation stress with peeks, memory hygiene at
//! teardown, balanced-count accounting — all six stacks.

mod common;

use sec_repro::{ConcurrentStack, StackHandle};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

#[test]
fn mixed_ops_with_peeks_do_not_crash_or_wedge() {
    with_all_stacks!(7, |stack, name| {
        thread::scope(|scope| {
            for t in 0..6usize {
                let stack = &stack;
                scope.spawn(move || {
                    let mut h = stack.register();
                    for i in 0..1_000usize {
                        match (t * 31 + i) % 10 {
                            0..=2 => h.push((t * 10_000 + i) as u64),
                            3..=5 => {
                                let _ = h.pop();
                            }
                            _ => {
                                let _ = h.peek();
                            }
                        }
                    }
                });
            }
        });
        let _ = name;
    });
}

#[test]
fn balanced_push_pop_counts_reconcile() {
    with_all_stacks!(6, |stack, name| {
        const THREADS: usize = 5;
        const OPS: usize = 2_000;
        let pops = AtomicUsize::new(0);
        let pushes = AtomicUsize::new(0);
        thread::scope(|scope| {
            for t in 0..THREADS {
                let stack = &stack;
                let pops = &pops;
                let pushes = &pushes;
                scope.spawn(move || {
                    let mut h = stack.register();
                    for i in 0..OPS {
                        if (t + i) % 2 == 0 {
                            h.push(i as u64);
                            pushes.fetch_add(1, Ordering::Relaxed);
                        } else if h.pop().is_some() {
                            pops.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        let mut h = stack.register();
        let mut remaining = 0usize;
        while h.pop().is_some() {
            remaining += 1;
        }
        assert_eq!(
            pops.load(Ordering::Relaxed) + remaining,
            pushes.load(Ordering::Relaxed),
            "[{name}] pushed values must equal popped + remaining"
        );
    });
}

/// Payload whose drops we count, to prove no double-drop / no leak of
/// *values* (allocation hygiene is checked by the reclaim tests).
struct CountedPayload(std::sync::Arc<AtomicUsize>);
impl Drop for CountedPayload {
    fn drop(&mut self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }
}

/// Generic drop-exactly-once scenario for one stack type.
fn drop_hygiene<S, F>(factory: F, name: &str)
where
    S: ConcurrentStack<CountedPayload>,
    F: FnOnce(usize) -> S,
{
    const THREADS: usize = 4;
    const OPS: usize = 800;
    let drops = std::sync::Arc::new(AtomicUsize::new(0));
    {
        let stack = factory(THREADS);
        thread::scope(|scope| {
            for t in 0..THREADS {
                let stack = &stack;
                let drops = &drops;
                scope.spawn(move || {
                    let mut h = stack.register();
                    for i in 0..OPS {
                        if (t ^ i) % 3 != 0 {
                            h.push(CountedPayload(std::sync::Arc::clone(drops)));
                        } else {
                            drop(h.pop());
                        }
                    }
                });
            }
        });
        // Stack goes out of scope holding the un-popped remainder.
    }
    let expected: usize = (0..THREADS)
        .map(|t| (0..OPS).filter(|i| (t ^ i) % 3 != 0).count())
        .sum();
    assert_eq!(
        drops.load(Ordering::Relaxed),
        expected,
        "[{name}] every pushed payload must drop exactly once"
    );
}

#[test]
fn sec_drops_values_exactly_once() {
    drop_hygiene(
        |n| sec_repro::SecStack::with_config(sec_repro::SecConfig::new(2, n)),
        "SEC",
    );
}

#[test]
fn treiber_drops_values_exactly_once() {
    drop_hygiene(sec_repro::baselines::TreiberStack::new, "TRB");
}

#[test]
fn eb_drops_values_exactly_once() {
    drop_hygiene(sec_repro::baselines::EbStack::new, "EB");
}

#[test]
fn fc_drops_values_exactly_once() {
    drop_hygiene(sec_repro::baselines::FcStack::new, "FC");
}

#[test]
fn cc_drops_values_exactly_once() {
    drop_hygiene(sec_repro::baselines::CcStack::new, "CC");
}

#[test]
fn tsi_drops_values_exactly_once() {
    drop_hygiene(sec_repro::baselines::TsiStack::new, "TSI");
}

#[test]
fn treiber_hp_drops_values_exactly_once() {
    drop_hygiene(sec_repro::baselines::TreiberHpStack::new, "TRB-HP");
}

#[test]
fn locked_drops_values_exactly_once() {
    drop_hygiene(sec_repro::baselines::LockedStack::new, "LCK");
}

#[test]
fn sec_works_at_every_aggregator_count_with_odd_thread_counts() {
    for k in 1..=5 {
        for threads in [1usize, 3, 7] {
            let stack: sec_repro::SecStack<u64> =
                sec_repro::SecStack::with_config(sec_repro::SecConfig::new(k, threads));
            thread::scope(|scope| {
                for t in 0..threads {
                    let stack = &stack;
                    scope.spawn(move || {
                        let mut h = stack.register();
                        for i in 0..300usize {
                            if (t + i) % 2 == 0 {
                                h.push(i as u64);
                            } else {
                                let _ = h.pop();
                            }
                        }
                    });
                }
            });
            let r = stack.stats().report();
            assert_eq!(
                r.eliminated + r.combined,
                r.ops,
                "k={k} threads={threads}: accounting identity"
            );
        }
    }
}
