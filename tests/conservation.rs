//! Integration: value conservation under concurrency — for all six
//! stacks (every pushed value is popped exactly once, run + drain, none
//! invented, none lost), for the queue family (the same contract over
//! enqueue/dequeue), for the combining counter (observed pre-values
//! must form the exact prefix-sum chain of the operands), and for the
//! combining map (every inserted value exits exactly once — displaced,
//! removed, or drained).

mod common;

use sec_repro::{ConcurrentQueue, ConcurrentStack, QueueHandle, StackHandle};
use std::collections::HashSet;
use std::thread;

/// Generic conservation scenario: `threads` workers each push unique
/// values and pop opportunistically; afterwards the drain must account
/// for exactly the multiset difference.
fn conservation<S: ConcurrentStack<u64>>(stack: &S, name: &str, threads: usize, per: usize) {
    let popped: Vec<Vec<u64>> = thread::scope(|scope| {
        (0..threads)
            .map(|t| {
                let stack = &stack;
                scope.spawn(move || {
                    let mut h = stack.register();
                    let mut got = Vec::new();
                    for i in 0..per {
                        h.push((t * per + i) as u64);
                        if i % 3 != 0 {
                            if let Some(v) = h.pop() {
                                got.push(v);
                            }
                        }
                    }
                    got
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|j| j.join().unwrap())
            .collect()
    });

    let mut seen: HashSet<u64> = HashSet::new();
    for v in popped.into_iter().flatten() {
        assert!(seen.insert(v), "[{name}] value {v} popped twice during run");
    }
    let mut h = stack.register();
    while let Some(v) = h.pop() {
        assert!(seen.insert(v), "[{name}] value {v} popped twice in drain");
    }
    assert_eq!(
        seen.len(),
        threads * per,
        "[{name}] values lost: expected {} distinct pops",
        threads * per
    );
    assert_eq!(h.pop(), None, "[{name}] stack must end empty");
}

#[test]
fn all_stacks_conserve_values_4_threads() {
    with_all_stacks!(5, |stack, name| {
        conservation(&stack, name, 4, 1_500);
    });
}

#[test]
fn all_stacks_conserve_values_oversubscribed() {
    // More threads than this host has cores — exercises every blocking
    // wait path under forced descheduling.
    with_all_stacks!(13, |stack, name| {
        conservation(&stack, name, 12, 400);
    });
}

#[test]
fn sec_adaptive_conserves_values_under_forced_resizes() {
    // The generic scenario, on an elastic stack whose active aggregator
    // set is grown and shrunk throughout the run: re-mapping must never
    // lose, duplicate or invent a value, and the resize counters must
    // prove the transitions actually happened.
    use sec_repro::{SecConfig, SecStack};
    use std::sync::atomic::{AtomicBool, Ordering};

    const THREADS: usize = 6;
    const PER: usize = 1_000;
    let stack: SecStack<u64> =
        SecStack::with_config(SecConfig::adaptive_windowed(1, 4, 64, THREADS + 1));
    let done = AtomicBool::new(false);

    thread::scope(|scope| {
        let stack = &stack;
        let done = &done;
        scope.spawn(move || {
            let mut k = 1usize;
            while !done.load(Ordering::Acquire) {
                stack.set_active_aggregators(k);
                k = k % 4 + 1;
                thread::yield_now();
            }
        });
        conservation(stack, "SEC_Adaptive", THREADS, PER);
        done.store(true, Ordering::Release);
    });

    let r = stack.stats().report();
    assert!(
        r.grows > 0 && r.shrinks > 0,
        "both transition directions must be exercised: {r:?}"
    );
    let active = stack.active_aggregators();
    assert!((1..=4).contains(&active), "active {active} out of [1, 4]");
}

/// Queue-family conservation: no value invented, lost, or dequeued
/// twice (run + drain), mirroring the stack scenario above.
fn queue_conservation<Q: ConcurrentQueue<u64>>(queue: &Q, name: &str, threads: usize, per: usize) {
    let dequeued: Vec<Vec<u64>> = thread::scope(|scope| {
        (0..threads)
            .map(|t| {
                let queue = &queue;
                scope.spawn(move || {
                    let mut h = queue.register();
                    let mut got = Vec::new();
                    for i in 0..per {
                        h.enqueue((t * per + i) as u64);
                        if i % 3 != 0 {
                            if let Some(v) = h.dequeue() {
                                got.push(v);
                            }
                        }
                    }
                    got
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|j| j.join().unwrap())
            .collect()
    });

    let mut seen: HashSet<u64> = HashSet::new();
    for v in dequeued.into_iter().flatten() {
        assert!(
            seen.insert(v),
            "[{name}] value {v} dequeued twice during run"
        );
        assert!(
            (v as usize) < threads * per,
            "[{name}] value {v} invented (never enqueued)"
        );
    }
    let mut h = queue.register();
    while let Some(v) = h.dequeue() {
        assert!(seen.insert(v), "[{name}] value {v} dequeued twice in drain");
    }
    assert_eq!(
        seen.len(),
        threads * per,
        "[{name}] values lost: expected {} distinct dequeues",
        threads * per
    );
    assert_eq!(h.dequeue(), None, "[{name}] queue must end empty");
}

/// Invokes `$body` once per queue implementation (SEC-Q with and
/// without the rendezvous window, MS, LCK-Q).
macro_rules! with_all_queues {
    ($max_threads:expr, |$queue:ident, $name:ident| $body:block) => {{
        {
            let $queue: sec_repro::ext::SecQueue<u64> = sec_repro::ext::SecQueue::new($max_threads);
            let $name = "SEC-Q";
            $body
        }
        {
            let $queue: sec_repro::ext::SecQueue<u64> =
                sec_repro::ext::SecQueue::new($max_threads).rendezvous_spins(0);
            let $name = "SEC-Q/no-rdv";
            $body
        }
        {
            let $queue: sec_repro::baselines::MsQueue<u64> =
                sec_repro::baselines::MsQueue::new($max_threads);
            let $name = "MS";
            $body
        }
        {
            let $queue: sec_repro::baselines::LockedQueue<u64> =
                sec_repro::baselines::LockedQueue::new($max_threads);
            let $name = "LCK-Q";
            $body
        }
    }};
}

#[test]
fn all_queues_conserve_values_4_threads() {
    with_all_queues!(5, |queue, name| {
        queue_conservation(&queue, name, 4, 1_500);
    });
}

#[test]
fn all_queues_conserve_values_oversubscribed() {
    with_all_queues!(13, |queue, name| {
        queue_conservation(&queue, name, 12, 400);
    });
}

#[test]
fn all_queues_agree_on_emptiness_and_fifo() {
    with_all_queues!(2, |queue, name| {
        let mut h = queue.register();
        assert_eq!(h.dequeue(), None, "[{name}] fresh queue dequeues EMPTY");
        h.enqueue(1);
        h.enqueue(2);
        assert_eq!(h.dequeue(), Some(1), "[{name}] FIFO order");
        assert_eq!(h.dequeue(), Some(2), "[{name}] FIFO order");
        assert_eq!(h.dequeue(), None, "[{name}] drained queue dequeues EMPTY");
    });
}

/// Counter conservation, exact form: with every operand ≥ 1 the
/// pre-values observed by `fetch_add` are unique, and sorting them
/// must reproduce the full prefix-sum chain of the operands — nothing
/// double-counted, nothing dropped, one linearization order for all.
fn counter_conservation(counter: &sec_repro::ext::SecCounter, threads: usize, per: usize) {
    let observed: Vec<Vec<(u64, u64)>> = thread::scope(|scope| {
        (0..threads)
            .map(|t| {
                let counter = &counter;
                scope.spawn(move || {
                    let mut h = counter.register();
                    (0..per)
                        .map(|i| {
                            let operand = 1 + ((t * per + i) % 9) as u64;
                            (h.fetch_add(operand), operand)
                        })
                        .collect()
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|j| j.join().unwrap())
            .collect()
    });

    let mut pairs: Vec<(u64, u64)> = observed.into_iter().flatten().collect();
    pairs.sort_unstable();
    let mut expect = 0u64;
    for (observed, operand) in pairs {
        assert_eq!(
            observed, expect,
            "observed pre-value breaks the prefix-sum chain"
        );
        expect += operand;
    }
    assert_eq!(
        counter.load(),
        expect,
        "final value must equal the chain sum"
    );
    assert_eq!(
        counter.stats().report().eliminated,
        0,
        "homogeneous family never eliminates"
    );
}

#[test]
fn counter_conserves_the_prefix_sum_chain_4_threads() {
    let counter = sec_repro::ext::SecCounter::new(4);
    counter_conservation(&counter, 4, 1_500);
}

#[test]
fn counter_conserves_the_prefix_sum_chain_oversubscribed() {
    // More threads than this host has cores, under the elastic policy:
    // the engine's parking and re-mapping paths both run hot.
    use sec_repro::{AggregatorPolicy, SecConfig, WaitPolicy};
    let counter = sec_repro::ext::SecCounter::with_config(
        SecConfig::new(1, 12)
            .aggregator_policy(AggregatorPolicy::Adaptive {
                min_k: 1,
                max_k: 4,
                window: 64,
            })
            .wait_policy(WaitPolicy::spin_then_park()),
    );
    counter_conservation(&counter, 12, 400);
}

#[test]
fn all_stacks_agree_on_emptiness() {
    with_all_stacks!(2, |stack, name| {
        let mut h = stack.register();
        assert_eq!(h.pop(), None, "[{name}] fresh stack pops EMPTY");
        assert_eq!(h.peek(), None, "[{name}] fresh stack peeks EMPTY");
        h.push(1);
        h.push(2);
        assert_eq!(h.peek(), Some(2), "[{name}] peek sees the newest");
        assert_eq!(h.pop(), Some(2), "[{name}]");
        assert_eq!(h.pop(), Some(1), "[{name}]");
        assert_eq!(h.pop(), None, "[{name}] drained stack pops EMPTY");
    });
}

/// Map conservation, exact form: values are globally unique
/// (`tid << 40 | seq`), so every value ever inserted must leave the
/// map by exactly one exit — displaced by a later insert on its key,
/// removed by a `remove`, or still present in the end-of-run drain.
/// Counting the exits and checking the sets balance is the keyed
/// analogue of the stack's multiset identity.
fn map_conservation(map: &sec_repro::ext::SecMap<u64, u64>, threads: usize, per: usize) {
    const KEYS: u64 = 128;
    struct Tally {
        inserted: Vec<u64>,
        displaced: Vec<u64>,
        removed: Vec<u64>,
    }
    let tallies: Vec<Tally> = thread::scope(|scope| {
        (0..threads)
            .map(|t| {
                let map = &map;
                scope.spawn(move || {
                    let mut h = map.register();
                    let mut tally = Tally {
                        inserted: Vec::new(),
                        displaced: Vec::new(),
                        removed: Vec::new(),
                    };
                    for i in 0..per {
                        // Multiplicative scramble so neighbouring
                        // iterations hit distant keys (and shards).
                        let key = ((t * per + i) as u64).wrapping_mul(0x9E37_79B9) % KEYS;
                        match i % 5 {
                            0..=2 => {
                                let value = (t as u64) << 40 | i as u64;
                                tally.inserted.push(value);
                                if let Some(prev) = h.insert(key, value) {
                                    tally.displaced.push(prev);
                                }
                            }
                            3 => {
                                if let Some(v) = h.remove(&key) {
                                    tally.removed.push(v);
                                }
                            }
                            _ => {
                                let _ = h.get(&key);
                            }
                        }
                    }
                    tally
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|j| j.join().unwrap())
            .collect()
    });

    let mut inserted: HashSet<u64> = HashSet::new();
    for t in &tallies {
        for &v in &t.inserted {
            assert!(inserted.insert(v), "value {v:#x} inserted twice");
        }
    }
    let mut exited: HashSet<u64> = HashSet::new();
    for t in &tallies {
        for &v in t.displaced.iter().chain(&t.removed) {
            assert!(inserted.contains(&v), "phantom value {v:#x} left the map");
            assert!(exited.insert(v), "value {v:#x} left the map twice");
        }
    }
    let mut h = map.register();
    for key in 0..KEYS {
        if let Some(v) = h.remove(&key) {
            assert!(inserted.contains(&v), "phantom value {v:#x} in drain");
            assert!(exited.insert(v), "value {v:#x} left the map twice (drain)");
        }
    }
    assert!(map.is_empty(), "drain over the whole key space must empty");
    assert_eq!(
        exited.len(),
        inserted.len(),
        "every inserted value must be displaced, removed or drained"
    );
    assert_eq!(
        map.stats().report().eliminated,
        0,
        "keyed family never eliminates"
    );
}

#[test]
fn map_conserves_every_value_4_threads() {
    let map = sec_repro::ext::SecMap::new(5);
    map_conservation(&map, 4, 1_500);
}

#[test]
fn map_conserves_every_value_oversubscribed() {
    // More threads than this host has cores, under the elastic policy
    // with parking waits: re-mapping the bucket → shard routing while
    // threads are forcibly descheduled must not break the identity.
    use sec_repro::{AggregatorPolicy, SecConfig, WaitPolicy};
    let map = sec_repro::ext::SecMap::with_config(
        SecConfig::new(1, 13)
            .aggregator_policy(AggregatorPolicy::Adaptive {
                min_k: 1,
                max_k: 4,
                window: 64,
            })
            .wait_policy(WaitPolicy::spin_then_park()),
    );
    map_conservation(&map, 12, 400);
}

// ----------------------------------------------------------------------
// Bulk operations: the same conservation contract when whole slices
// move through single announcements (push_many/pop_many,
// enqueue_many/dequeue_many mixed freely with singles).
// ----------------------------------------------------------------------

#[test]
fn sec_stack_conserves_values_under_mixed_bulk_and_single_ops() {
    const THREADS: usize = 4;
    const ROUNDS: usize = 150;
    const LEN: usize = 8;
    let stack: sec_repro::SecStack<u64> = sec_repro::SecStack::new(THREADS + 1);
    let popped: Vec<Vec<u64>> = thread::scope(|scope| {
        (0..THREADS)
            .map(|t| {
                let stack = &stack;
                scope.spawn(move || {
                    let mut h = stack.register();
                    let mut got = Vec::new();
                    let mut buf = Vec::new();
                    let mut next = (t * 1_000_000) as u64;
                    for r in 0..ROUNDS {
                        match (t + r) % 4 {
                            0 => {
                                let vals: Vec<u64> = (0..LEN as u64).map(|i| next + i).collect();
                                next += LEN as u64;
                                h.push_many(&vals);
                            }
                            1 => {
                                h.push(next);
                                next += 1;
                            }
                            2 => {
                                h.pop_many(&mut buf, LEN);
                                got.append(&mut buf);
                            }
                            _ => {
                                if let Some(v) = h.pop() {
                                    got.push(v);
                                }
                            }
                        }
                    }
                    (got, next - (t * 1_000_000) as u64)
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|j| {
                let (got, _) = j.join().unwrap();
                got
            })
            .collect()
    });

    let mut seen: HashSet<u64> = HashSet::new();
    let mut total_popped = 0usize;
    for v in popped.into_iter().flatten() {
        assert!(seen.insert(v), "value {v} popped twice during run");
        total_popped += 1;
    }
    let mut h = stack.register();
    let mut buf = Vec::new();
    loop {
        // Drain with bulk pops so the drain path itself is bulk.
        if h.pop_many(&mut buf, LEN) == 0 {
            break;
        }
        for v in buf.drain(..) {
            assert!(seen.insert(v), "value {v} popped twice in drain");
            total_popped += 1;
        }
    }
    // Every thread's pushed count is derivable from its round pattern,
    // but the multiset identity is what matters: everything pushed came
    // back exactly once.
    assert_eq!(seen.len(), total_popped);
    let pushed_total: usize = (0..THREADS)
        .map(|t| {
            (0..ROUNDS)
                .map(|r| match (t + r) % 4 {
                    0 => LEN,
                    1 => 1,
                    _ => 0,
                })
                .sum::<usize>()
        })
        .sum();
    assert_eq!(
        seen.len(),
        pushed_total,
        "values lost: popped {} of {} pushed",
        seen.len(),
        pushed_total
    );
}

#[test]
fn sec_queue_conserves_values_under_mixed_bulk_and_single_ops() {
    const THREADS: usize = 4;
    const ROUNDS: usize = 150;
    const LEN: usize = 8;
    let queue: sec_repro::ext::SecQueue<u64> = sec_repro::ext::SecQueue::new(THREADS + 1);
    let popped: Vec<Vec<u64>> = thread::scope(|scope| {
        (0..THREADS)
            .map(|t| {
                let queue = &queue;
                scope.spawn(move || {
                    let mut h = queue.register();
                    let mut got = Vec::new();
                    let mut buf = Vec::new();
                    let mut next = (t * 1_000_000) as u64;
                    for r in 0..ROUNDS {
                        match (t + r) % 4 {
                            0 => {
                                let vals: Vec<u64> = (0..LEN as u64).map(|i| next + i).collect();
                                next += LEN as u64;
                                h.enqueue_many(&vals);
                            }
                            1 => {
                                h.enqueue(next);
                                next += 1;
                            }
                            2 => {
                                h.dequeue_many(&mut buf, LEN);
                                got.append(&mut buf);
                            }
                            _ => {
                                if let Some(v) = h.dequeue() {
                                    got.push(v);
                                }
                            }
                        }
                    }
                    got
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|j| j.join().unwrap())
            .collect()
    });

    let mut seen: HashSet<u64> = HashSet::new();
    for v in popped.into_iter().flatten() {
        assert!(seen.insert(v), "value {v} dequeued twice during run");
    }
    let mut h = queue.register();
    let mut buf = Vec::new();
    while h.dequeue_many(&mut buf, LEN) != 0 {
        for v in buf.drain(..) {
            assert!(seen.insert(v), "value {v} dequeued twice in drain");
        }
    }
    let pushed_total: usize = (0..THREADS)
        .map(|t| {
            (0..ROUNDS)
                .map(|r| match (t + r) % 4 {
                    0 => LEN,
                    1 => 1,
                    _ => 0,
                })
                .sum::<usize>()
        })
        .sum();
    assert_eq!(
        seen.len(),
        pushed_total,
        "values lost: dequeued {} of {} enqueued",
        seen.len(),
        pushed_total
    );
}
