//! Shared helpers for the cross-crate integration tests: run the same
//! generic scenario against all eight stack implementations (the
//! paper's six plus the hazard-pointer Treiber and the mutex floor).

use sec_repro::baselines::{
    CcStack, EbStack, FcStack, LockedStack, TreiberHpStack, TreiberStack, TsiStack,
};
use sec_repro::{ConcurrentStack, SecConfig, SecStack};

/// Invokes `$body` once per stack implementation with `$stack` bound to
/// a fresh instance (sized for `$max_threads` registrations) and
/// `$name` to the algorithm label.
#[macro_export]
macro_rules! with_all_stacks {
    ($max_threads:expr, |$stack:ident, $name:ident| $body:block) => {{
        {
            let $stack: sec_repro::SecStack<u64> =
                sec_repro::SecStack::with_config(sec_repro::SecConfig::new(2, $max_threads));
            let $name = "SEC";
            $body
        }
        {
            let $stack: sec_repro::baselines::TreiberStack<u64> =
                sec_repro::baselines::TreiberStack::new($max_threads);
            let $name = "TRB";
            $body
        }
        {
            let $stack: sec_repro::baselines::EbStack<u64> =
                sec_repro::baselines::EbStack::new($max_threads);
            let $name = "EB";
            $body
        }
        {
            let $stack: sec_repro::baselines::FcStack<u64> =
                sec_repro::baselines::FcStack::new($max_threads);
            let $name = "FC";
            $body
        }
        {
            let $stack: sec_repro::baselines::CcStack<u64> =
                sec_repro::baselines::CcStack::new($max_threads);
            let $name = "CC";
            $body
        }
        {
            let $stack: sec_repro::baselines::TsiStack<u64> =
                sec_repro::baselines::TsiStack::new($max_threads);
            let $name = "TSI";
            $body
        }
        {
            let $stack: sec_repro::baselines::TreiberHpStack<u64> =
                sec_repro::baselines::TreiberHpStack::new($max_threads);
            let $name = "TRB-HP";
            $body
        }
        {
            let $stack: sec_repro::baselines::LockedStack<u64> =
                sec_repro::baselines::LockedStack::new($max_threads);
            let $name = "LCK";
            $body
        }
    }};
}

/// Compile-time check that every stack satisfies the trait bounds the
/// harness relies on.
#[allow(dead_code)]
fn assert_bounds() {
    fn takes<S: ConcurrentStack<u64>>(_: &S) {}
    let sec: SecStack<u64> = SecStack::with_config(SecConfig::new(1, 1));
    takes(&sec);
    takes(&TreiberStack::<u64>::new(1));
    takes(&EbStack::<u64>::new(1));
    takes(&FcStack::<u64>::new(1));
    takes(&CcStack::<u64>::new(1));
    takes(&TsiStack::<u64>::new(1));
    takes(&TreiberHpStack::<u64>::new(1));
    takes(&LockedStack::<u64>::new(1));
}
