//! Integration: the zero-allocation smoke test (DESIGN.md §10).
//!
//! With `RecyclePolicy::PerThread`, steady-state operations must
//! perform **zero heap allocations**: every node, batch struct and
//! slot-array buffer comes off a free list primed by earlier
//! retirements. This binary installs a counting global allocator,
//! warms a stack and a queue until their caches and limbo-bag
//! pipelines reach steady state, and then asserts that a second,
//! identical burst of operations allocates nothing at all.
//!
//! The measured runs are single-threaded and therefore deterministic:
//! the warm-up executes the *same* op sequence as the measurement, so
//! every internal `Vec` (limbo bags, cache bins) has already reached
//! its high-water capacity before counting starts. A control run with
//! `RecyclePolicy::Off` asserts the counter itself works (it must see
//! plenty of allocations).
//!
//! Kept in its own test binary because the `#[global_allocator]` is
//! process-wide; the single `#[test]` keeps the measurement windows
//! serial.

use sec_repro::ext::SecQueue;
use sec_repro::{RecyclePolicy, SecConfig, SecStack};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// `System`, with every allocation event on the *measured thread*
/// counted. The gate must be per-thread: the process-global counter
/// would otherwise pick up stray allocations from the libtest harness
/// thread that happens to share the process (observed as rare 1–2
/// allocation blips inside an otherwise deterministic, allocation-free
/// measurement window).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    // const-initialized: reading it never allocates, so it is safe to
    // consult from inside the global allocator.
    static COUNT_THIS_THREAD: Cell<bool> = const { Cell::new(false) };
}

fn count_here() {
    COUNT_THIS_THREAD.with(|c| c.set(true));
}

fn counting_enabled() -> bool {
    COUNT_THIS_THREAD.try_with(|c| c.get()).unwrap_or(false)
}

// Safety: defers every operation to `System`; the counter has no
// effect on the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if counting_enabled() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if counting_enabled() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if counting_enabled() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn allocs_now() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

const OPS: u64 = 6_000;

/// A push/pop burst with no allocations of its own.
fn stack_burst(h: &mut sec_repro::SecHandle<'_, u64>) {
    for i in 0..OPS {
        h.push(i);
        let _ = h.pop();
    }
}

/// An enqueue/dequeue burst with no allocations of its own.
fn queue_burst(h: &mut sec_repro::ext::SecQueueHandle<'_, u64>) {
    for i in 0..OPS {
        h.enqueue(i);
        let _ = h.dequeue();
    }
}

#[test]
fn steady_state_ops_perform_zero_heap_allocations() {
    // Gate the allocator's counter to this thread only.
    count_here();

    // The cache must cover the blocks in flight through the limbo-bag
    // pipeline between amortized epoch advances; the default bound
    // does, comfortably. Freezer yields off: determinism (and speed)
    // for the single-threaded measurement.
    let recycling = SecConfig::new(2, 1)
        .freezer_yields(0)
        .recycle(RecyclePolicy::per_thread());

    // --- Stack, recycling on: warm up, then measure. -----------------
    let stack: SecStack<u64> = SecStack::with_config(recycling);
    let mut h = stack.register();
    stack_burst(&mut h); // warm-up: builds cache + bag inventory
    let before = allocs_now();
    stack_burst(&mut h); // measurement: identical op sequence
    let stack_allocs = allocs_now() - before;
    assert_eq!(
        stack_allocs, 0,
        "stack steady state must not touch the heap ({stack_allocs} allocations in {OPS} push/pop pairs)"
    );
    drop(h);
    let stats = stack.reclaim_stats();
    assert!(
        stats.recycle_hits > 0 && stats.hit_pct() > 90.0,
        "the warm stack must run almost entirely off the free lists: {stats:?}"
    );

    // --- Queue, recycling on. ----------------------------------------
    let queue: SecQueue<u64> = SecQueue::new(1);
    let mut h = queue.register();
    queue_burst(&mut h);
    let before = allocs_now();
    queue_burst(&mut h);
    let queue_allocs = allocs_now() - before;
    assert_eq!(
        queue_allocs, 0,
        "queue steady state must not touch the heap ({queue_allocs} allocations in {OPS} enqueue/dequeue pairs)"
    );
    drop(h);

    // --- Stack, recycling on AND tracing enabled (DESIGN.md §14). ----
    // The sec-trace hot path must never allocate: rings and histograms
    // are fully provisioned at construction, and recording is
    // fetch_add into preallocated atomics. Sample every op
    // (sample_shift 0) so the assertion covers the densest recording
    // the layer can do, not just the sampled-out fast path.
    let traced: SecStack<u64> = SecStack::with_config(
        SecConfig::new(2, 1)
            .freezer_yields(0)
            .recycle(RecyclePolicy::per_thread())
            .trace(sec_repro::TraceConfig::on().sample_shift(0)),
    );
    let mut h = traced.register();
    stack_burst(&mut h); // warm-up: caches + (if compiled) recorder paths
    let before = allocs_now();
    stack_burst(&mut h);
    let traced_allocs = allocs_now() - before;
    drop(h);
    assert_eq!(
        traced_allocs, 0,
        "steady state with tracing enabled must not touch the heap \
         ({traced_allocs} allocations in {OPS} push/pop pairs)"
    );
    #[cfg(feature = "trace")]
    {
        let tracer = traced.tracer().expect("trace feature builds a recorder");
        assert!(
            tracer.events_recorded() > 0,
            "the traced run must actually have recorded events"
        );
        assert!(
            tracer.op_latency().count() > 0,
            "sample_shift 0 must sample every op's latency"
        );
    }

    // --- Control: recycling off must allocate per op. ----------------
    let off: SecStack<u64> = SecStack::with_config(
        SecConfig::new(2, 1)
            .freezer_yields(0)
            .recycle(RecyclePolicy::Off),
    );
    let mut h = off.register();
    stack_burst(&mut h);
    let before = allocs_now();
    stack_burst(&mut h);
    let off_allocs = allocs_now() - before;
    drop(h);
    assert!(
        off_allocs >= OPS,
        "with recycling off, every push (at least) allocates — got {off_allocs} for {OPS} pairs; \
         the counting allocator must be observing the run"
    );
}
