//! Integration: the zero-allocation smoke test (DESIGN.md §10).
//!
//! With `RecyclePolicy::PerThread`, steady-state operations must
//! perform **zero heap allocations**: every node, batch struct and
//! slot-array buffer comes off a free list primed by earlier
//! retirements. This binary installs a counting global allocator,
//! warms a stack and a queue until their caches and limbo-bag
//! pipelines reach steady state, and then asserts that a second,
//! identical burst of operations allocates nothing at all.
//!
//! The measured runs are single-threaded and therefore deterministic:
//! the warm-up executes the *same* op sequence as the measurement, so
//! every internal `Vec` (limbo bags, cache bins) has already reached
//! its high-water capacity before counting starts. A control run with
//! `RecyclePolicy::Off` asserts the counter itself works (it must see
//! plenty of allocations).
//!
//! Kept in its own test binary because the `#[global_allocator]` is
//! process-wide; the single `#[test]` keeps the measurement windows
//! serial.

use sec_repro::ext::SecQueue;
use sec_repro::{RecyclePolicy, SecConfig, SecStack};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// `System`, with every allocation event on the *measured thread*
/// counted. The gate must be per-thread: the process-global counter
/// would otherwise pick up stray allocations from the libtest harness
/// thread that happens to share the process (observed as rare 1–2
/// allocation blips inside an otherwise deterministic, allocation-free
/// measurement window).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    // const-initialized: reading it never allocates, so it is safe to
    // consult from inside the global allocator.
    static COUNT_THIS_THREAD: Cell<bool> = const { Cell::new(false) };
}

fn count_here() {
    COUNT_THIS_THREAD.with(|c| c.set(true));
}

fn counting_enabled() -> bool {
    COUNT_THIS_THREAD.try_with(|c| c.get()).unwrap_or(false)
}

// Safety: defers every operation to `System`; the counter has no
// effect on the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if counting_enabled() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if counting_enabled() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if counting_enabled() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn allocs_now() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

const OPS: u64 = 6_000;

/// A push/pop burst with no allocations of its own.
fn stack_burst(h: &mut sec_repro::SecHandle<'_, u64>) {
    for i in 0..OPS {
        h.push(i);
        let _ = h.pop();
    }
}

/// An enqueue/dequeue burst with no allocations of its own.
fn queue_burst(h: &mut sec_repro::ext::SecQueueHandle<'_, u64>) {
    for i in 0..OPS {
        h.enqueue(i);
        let _ = h.dequeue();
    }
}

/// Bulk batch size and call count for the bulk-announcement section.
const BULK_LEN: usize = 16;
const BULK_CALLS: u64 = 200;

/// A push_many/pop_many burst. The scratch buffers live with the
/// caller so the measured burst's only possible allocations are the
/// structure's own.
fn bulk_stack_burst(h: &mut sec_repro::SecHandle<'_, u64>, vals: &[u64], out: &mut Vec<u64>) {
    for _ in 0..BULK_CALLS {
        h.push_many(vals);
        let got = h.pop_many(out, BULK_LEN);
        assert_eq!(got, BULK_LEN);
        out.clear();
    }
}

/// An enqueue_many/dequeue_many burst, same shape.
fn bulk_queue_burst(
    h: &mut sec_repro::ext::SecQueueHandle<'_, u64>,
    vals: &[u64],
    out: &mut Vec<u64>,
) {
    for _ in 0..BULK_CALLS {
        h.enqueue_many(vals);
        let got = h.dequeue_many(out, BULK_LEN);
        assert_eq!(got, BULK_LEN);
        out.clear();
    }
}

#[test]
fn steady_state_ops_perform_zero_heap_allocations() {
    // Gate the allocator's counter to this thread only.
    count_here();

    // The cache must cover the blocks in flight through the limbo-bag
    // pipeline between amortized epoch advances; the default bound
    // does, comfortably. Freezer yields off: determinism (and speed)
    // for the single-threaded measurement.
    let recycling = SecConfig::new(2, 1)
        .freezer_yields(0)
        .recycle(RecyclePolicy::per_thread());

    // --- Stack, recycling on: warm up, then measure. -----------------
    let stack: SecStack<u64> = SecStack::with_config(recycling);
    let mut h = stack.register();
    stack_burst(&mut h); // warm-up: builds cache + bag inventory
    let before = allocs_now();
    stack_burst(&mut h); // measurement: identical op sequence
    let stack_allocs = allocs_now() - before;
    assert_eq!(
        stack_allocs, 0,
        "stack steady state must not touch the heap ({stack_allocs} allocations in {OPS} push/pop pairs)"
    );
    drop(h);
    let stats = stack.reclaim_stats();
    assert!(
        stats.recycle_hits > 0 && stats.hit_pct() > 90.0,
        "the warm stack must run almost entirely off the free lists: {stats:?}"
    );

    // --- Queue, recycling on. ----------------------------------------
    let queue: SecQueue<u64> = SecQueue::new(1);
    let mut h = queue.register();
    queue_burst(&mut h);
    let before = allocs_now();
    queue_burst(&mut h);
    let queue_allocs = allocs_now() - before;
    assert_eq!(
        queue_allocs, 0,
        "queue steady state must not touch the heap ({queue_allocs} allocations in {OPS} enqueue/dequeue pairs)"
    );
    drop(h);

    // --- Bulk operations: zero-alloc AND one announcement per call. --
    // push_many/pop_many move whole slices through a single
    // announcement each: value nodes come off the same recycling
    // arena, results return through the caller's buffer. So a warmed
    // bulk burst must stay off the heap exactly like the singles —
    // while the engine's op-weighted freezer accounting shows
    // strictly fewer announcements (batches) than operations.
    let bulk: SecStack<u64> = SecStack::with_config(
        SecConfig::new(2, 1)
            .freezer_yields(0)
            .recycle(RecyclePolicy::per_thread()),
    );
    let vals = [7u64; BULK_LEN];
    let mut out: Vec<u64> = Vec::with_capacity(BULK_LEN);
    let mut h = bulk.register();
    bulk_stack_burst(&mut h, &vals, &mut out); // warm-up
    let before = allocs_now();
    bulk_stack_burst(&mut h, &vals, &mut out); // measurement
    let bulk_allocs = allocs_now() - before;
    assert_eq!(
        bulk_allocs, 0,
        "bulk steady state must not touch the heap \
         ({bulk_allocs} allocations in {BULK_CALLS} push_many/pop_many({BULK_LEN}) pairs)"
    );
    drop(h);
    let r = bulk.stats().report();
    // Warm-up + measurement: 2 rounds of BULK_CALLS push_many and
    // BULK_CALLS pop_many, each moving BULK_LEN values through ONE
    // announcement (single-threaded, so the counts are exact).
    assert_eq!(
        r.ops,
        2 * 2 * BULK_CALLS * BULK_LEN as u64,
        "the freezer counts every bulk element as an op"
    );
    assert_eq!(
        r.batches,
        2 * 2 * BULK_CALLS,
        "each bulk call must cost exactly one announcement"
    );

    let bulk_q: SecQueue<u64> = SecQueue::new(1);
    let mut h = bulk_q.register();
    bulk_queue_burst(&mut h, &vals, &mut out); // warm-up
    let before = allocs_now();
    bulk_queue_burst(&mut h, &vals, &mut out); // measurement
    let bulk_q_allocs = allocs_now() - before;
    assert_eq!(
        bulk_q_allocs, 0,
        "queue bulk steady state must not touch the heap \
         ({bulk_q_allocs} allocations in {BULK_CALLS} enqueue_many/dequeue_many({BULK_LEN}) pairs)"
    );
    drop(h);

    // --- Stack, recycling on AND tracing enabled (DESIGN.md §14). ----
    // The sec-trace hot path must never allocate: rings and histograms
    // are fully provisioned at construction, and recording is
    // fetch_add into preallocated atomics. Sample every op
    // (sample_shift 0) so the assertion covers the densest recording
    // the layer can do, not just the sampled-out fast path.
    let traced: SecStack<u64> = SecStack::with_config(
        SecConfig::new(2, 1)
            .freezer_yields(0)
            .recycle(RecyclePolicy::per_thread())
            .trace(sec_repro::TraceConfig::on().sample_shift(0)),
    );
    let mut h = traced.register();
    stack_burst(&mut h); // warm-up: caches + (if compiled) recorder paths
    let before = allocs_now();
    stack_burst(&mut h);
    let traced_allocs = allocs_now() - before;
    drop(h);
    assert_eq!(
        traced_allocs, 0,
        "steady state with tracing enabled must not touch the heap \
         ({traced_allocs} allocations in {OPS} push/pop pairs)"
    );
    #[cfg(feature = "trace")]
    {
        let tracer = traced.tracer().expect("trace feature builds a recorder");
        assert!(
            tracer.events_recorded() > 0,
            "the traced run must actually have recorded events"
        );
        assert!(
            tracer.op_latency().count() > 0,
            "sample_shift 0 must sample every op's latency"
        );
    }

    // --- Control: recycling off must allocate per op. ----------------
    let off: SecStack<u64> = SecStack::with_config(
        SecConfig::new(2, 1)
            .freezer_yields(0)
            .recycle(RecyclePolicy::Off),
    );
    let mut h = off.register();
    stack_burst(&mut h);
    let before = allocs_now();
    stack_burst(&mut h);
    let off_allocs = allocs_now() - before;
    drop(h);
    assert!(
        off_allocs >= OPS,
        "with recycling off, every push (at least) allocates — got {off_allocs} for {OPS} pairs; \
         the counting allocator must be observing the run"
    );
}
