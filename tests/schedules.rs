//! Integration: a deterministic schedule-exploring stress harness for
//! the SEC stack, in the spirit of exhaustive-interleaving checkers
//! (the Wing–Gong checker in `crates/linearize` verifies each explored
//! history) and crash/concurrency test rigs like kaist-cp/memento's.
//!
//! A *schedule* is derived entirely from a seed: the thread count, the
//! aggregator mode (Fixed K or Adaptive `[min_k, max_k]`), each
//! thread's operation script (push/pop/peek), the **yield points**
//! injected between operations, and the points at which grow/shrink
//! **resize transitions** are forced into the run. Re-running a seed
//! regenerates the identical schedule, so a failure reproduces by
//! seed alone:
//!
//! ```text
//! SCHEDULE_SEED=42 cargo test --test schedules
//! ```
//!
//! `SCHEDULE_SEEDS=N` widens the sweep (the nightly CI job raises it);
//! seeds that ever exposed a bug belong in `REGRESSION_SEEDS` so every
//! future run replays them first. The OS still owns the physical
//! interleaving — what the seed permutes is where threads *offer*
//! preemption (yield points) and where the aggregator set is resized,
//! which is exactly the surface elastic sharding added.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sec_linearize::spec::queue::{QueueOp, QueueSpec};
use sec_linearize::spec::{check_generic, TimedOp};
use sec_repro::ext::SecQueue;
use sec_repro::linearize::{check_conservation, check_history, Event, Op, Recorder};
use sec_repro::{SecConfig, SecStack};
use std::sync::Mutex;
use std::thread;

/// Aggregator mode a schedule runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Fixed(usize),
    Adaptive { min_k: usize, max_k: usize },
}

/// One step of a thread's script.
#[derive(Debug, Clone, Copy)]
enum Action {
    /// Push the next globally-unique value.
    Push,
    Pop,
    Peek,
    /// Offer preemption `n` times before the next step.
    Yield(u8),
    /// Force the active aggregator count to `k` (no-op under Fixed).
    Resize(usize),
}

/// A fully materialized schedule: everything the run does, derived
/// deterministically from `seed`.
#[derive(Debug)]
struct Schedule {
    seed: u64,
    mode: Mode,
    scripts: Vec<Vec<Action>>,
}

impl Schedule {
    /// Derives a schedule. `small` keeps histories inside the
    /// exponential Wing–Gong checker's reach; large schedules are
    /// checked by the linear-time conservation pass instead.
    fn derive(seed: u64, small: bool) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let threads = if small {
            2 + (rng.gen_range(0..2)) as usize
        } else {
            4 + (rng.gen_range(0..4)) as usize
        };
        let ops_per_thread = if small {
            5 + rng.gen_range(0..4) as usize
        } else {
            150 + rng.gen_range(0..250) as usize
        };
        let mode = match rng.gen_range(0..4) {
            0 => Mode::Fixed(1 + rng.gen_range(0..3) as usize),
            _ => {
                let min_k = 1 + rng.gen_range(0..2) as usize;
                let max_k = min_k + 1 + rng.gen_range(0..3) as usize;
                Mode::Adaptive { min_k, max_k }
            }
        };
        let (min_k, max_k) = match mode {
            Mode::Fixed(k) => (k, k),
            Mode::Adaptive { min_k, max_k } => (min_k, max_k),
        };

        let scripts = (0..threads)
            .map(|t| {
                let mut script = Vec::new();
                for i in 0..ops_per_thread {
                    // Permuted yield points: where this thread offers
                    // preemption, and how insistently.
                    if rng.gen_range(0..3) == 0 {
                        script.push(Action::Yield(1 + rng.gen_range(0..3) as u8));
                    }
                    // Resize points: forced grow/shrink transitions
                    // scattered through the run, plus a deterministic
                    // toggle at mid-script on thread 0 so every
                    // adaptive schedule exercises both directions.
                    if max_k > min_k {
                        if rng.gen_range(0..8) == 0 {
                            let span = (max_k - min_k + 1) as u32;
                            script.push(Action::Resize(min_k + rng.gen_range(0..span) as usize));
                        }
                        if t == 0 && i == ops_per_thread / 2 {
                            script.push(Action::Resize(max_k));
                            script.push(Action::Resize(min_k));
                        }
                    }
                    script.push(match rng.gen_range(0..5) {
                        0 | 1 => Action::Push,
                        2 | 3 => Action::Pop,
                        _ => Action::Peek,
                    });
                }
                script
            })
            .collect();
        Schedule {
            seed,
            mode,
            scripts,
        }
    }

    fn config(&self) -> SecConfig {
        let max_threads = self.scripts.len();
        match self.mode {
            Mode::Fixed(k) => SecConfig::new(k, max_threads),
            // Tiny window: the monitor itself also decides
            // mid-schedule, on top of the forced transitions.
            Mode::Adaptive { min_k, max_k } => {
                SecConfig::adaptive_windowed(min_k, max_k, 32, max_threads)
            }
        }
    }
}

/// Runs a schedule, returning the recorded history and the resize
/// transition count ((grows, shrinks) from `SecStats`).
fn run_schedule(s: &Schedule) -> (Vec<Event<u64>>, (u64, u64)) {
    let stack: SecStack<u64> = SecStack::with_config(s.config());
    let rec = Recorder::new();
    let events: Mutex<Vec<Event<u64>>> = Mutex::new(Vec::new());

    thread::scope(|scope| {
        for (t, script) in s.scripts.iter().enumerate() {
            let stack = &stack;
            let rec = &rec;
            let events = &events;
            scope.spawn(move || {
                let mut h = stack.register();
                let mut local = Vec::new();
                let mut pushed = 0usize;
                for action in script {
                    match *action {
                        Action::Yield(n) => {
                            for _ in 0..n {
                                thread::yield_now();
                            }
                            continue;
                        }
                        Action::Resize(k) => {
                            stack.set_active_aggregators(k);
                            continue;
                        }
                        _ => {}
                    }
                    let invoke = rec.now();
                    let op = match *action {
                        Action::Push => {
                            let v = (t * 1_000_000 + pushed) as u64;
                            pushed += 1;
                            h.push(v);
                            Op::Push(v)
                        }
                        Action::Pop => Op::Pop(h.pop()),
                        Action::Peek => Op::Peek(h.peek()),
                        _ => unreachable!(),
                    };
                    let response = rec.now();
                    local.push(Event {
                        thread: t,
                        op,
                        invoke,
                        response,
                    });
                }
                events.lock().unwrap().extend(local);
            });
        }
    });

    let report = stack.stats().report();
    let active = stack.active_aggregators();
    let (min_k, max_k) = match s.mode {
        Mode::Fixed(k) => (k, k),
        Mode::Adaptive { min_k, max_k } => (min_k, max_k),
    };
    assert!(
        (min_k..=max_k).contains(&active),
        "seed {}: final active {active} escaped [{min_k}, {max_k}]",
        s.seed
    );
    (events.into_inner().unwrap(), (report.grows, report.shrinks))
}

/// Seeds that previously exposed a bug: replayed first on every run so
/// a fixed failure stays fixed. (Empty so far — move offenders here.)
const REGRESSION_SEEDS: &[u64] = &[];

const SEED_BASE: u64 = 0x5EC5_C4ED;

fn sweep_seeds(default_count: u64) -> Vec<u64> {
    if let Ok(s) = std::env::var("SCHEDULE_SEED") {
        let seed = s.parse().expect("SCHEDULE_SEED must be a u64");
        return vec![seed];
    }
    let n = std::env::var("SCHEDULE_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default_count);
    REGRESSION_SEEDS
        .iter()
        .copied()
        .chain((0..n).map(|i| SEED_BASE.wrapping_add(i)))
        .collect()
}

fn replay_hint(seed: u64) -> String {
    format!("replay with: SCHEDULE_SEED={seed} cargo test --test schedules")
}

/// `true` when this run sweeps enough seeds for coverage assertions
/// (mode mix, transitions) to be meaningful. A `SCHEDULE_SEED` replay
/// runs exactly one schedule and a tiny `SCHEDULE_SEEDS` sweep may
/// draw only one mode — asserting coverage there would mask the very
/// failure being replayed with a spurious one.
fn coverage_asserts_apply(seed_count: usize) -> bool {
    std::env::var("SCHEDULE_SEED").is_err() && seed_count >= 16
}

#[test]
fn small_schedules_are_linearizable_across_fixed_and_adaptive_modes() {
    let mut adaptive_transitions = 0u64;
    let mut saw_fixed = false;
    let mut saw_adaptive = false;
    let seeds = sweep_seeds(32);
    let full_sweep = coverage_asserts_apply(seeds.len());
    for seed in seeds {
        let schedule = Schedule::derive(seed, true);
        match schedule.mode {
            Mode::Fixed(_) => saw_fixed = true,
            Mode::Adaptive { .. } => saw_adaptive = true,
        }
        let (history, (grows, shrinks)) = run_schedule(&schedule);
        check_conservation(&history).unwrap_or_else(|e| {
            panic!(
                "seed {seed} ({:?}): conservation violated: {e}\n{}",
                schedule.mode,
                replay_hint(seed)
            )
        });
        check_history(&history).unwrap_or_else(|e| {
            panic!(
                "seed {seed} ({:?}): history not linearizable: {e}\n{}\n{history:#?}",
                schedule.mode,
                replay_hint(seed)
            )
        });
        adaptive_transitions += grows + shrinks;
    }
    // A full sweep must genuinely explore the surface it claims to:
    // both modes, and actual grow/shrink transitions mid-history.
    // (Single-seed replays and tiny sweeps skip these coverage checks.)
    if full_sweep {
        assert!(saw_fixed, "sweep never generated a Fixed schedule");
        assert!(saw_adaptive, "sweep never generated an Adaptive schedule");
        assert!(
            adaptive_transitions > 0,
            "no resize transition was exercised across the whole sweep"
        );
    }
}

#[test]
fn large_schedules_conserve_values_and_drain_clean() {
    // Derived from the seed directly (no transformation), so the
    // printed replay seed regenerates exactly the failing schedule —
    // `derive(seed, small = false)` already differs from the small
    // test's derivation of the same seed.
    for seed in sweep_seeds(6) {
        let schedule = Schedule::derive(seed, false);
        let (history, _) = run_schedule(&schedule);
        check_conservation(&history).unwrap_or_else(|e| {
            panic!(
                "seed {seed} ({:?}): conservation violated: {e}\n{}",
                schedule.mode,
                replay_hint(seed)
            )
        });
    }
}

#[test]
fn identical_seeds_derive_identical_schedules() {
    // The replay guarantee: a seed fully determines the schedule.
    let a = Schedule::derive(0xD15EA5E, true);
    let b = Schedule::derive(0xD15EA5E, true);
    assert_eq!(a.mode, b.mode);
    assert_eq!(a.scripts.len(), b.scripts.len());
    for (sa, sb) in a.scripts.iter().zip(&b.scripts) {
        assert_eq!(format!("{sa:?}"), format!("{sb:?}"));
    }
}

// ----------------------------------------------------------------------
// Queue schedules: the same seed-derived harness, retargeted at the
// SecQueue tentpole (per-end batches have their own interleaving
// surface — batch cuts, the swing-then-link gap, and the empty
// rendezvous window — permuted here through yield points and a
// seed-chosen rendezvous budget).
// ----------------------------------------------------------------------

/// One step of a queue thread's script.
#[derive(Debug, Clone, Copy)]
enum QueueAction {
    /// Enqueue the next globally-unique value.
    Enqueue,
    Dequeue,
    /// Offer preemption `n` times before the next step.
    Yield(u8),
}

/// A seed-derived queue schedule.
#[derive(Debug)]
struct QueueSchedule {
    seed: u64,
    /// Rendezvous window (0 disables empty-only elimination — both
    /// paths must appear across a sweep).
    rendezvous_spins: u32,
    scripts: Vec<Vec<QueueAction>>,
}

impl QueueSchedule {
    fn derive(seed: u64, small: bool) -> Self {
        // Distinct stream from the stack schedules of the same seed.
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x000F_EED0_5EC0_FEE0);
        let threads = if small {
            2 + rng.gen_range(0..2) as usize
        } else {
            4 + rng.gen_range(0..4) as usize
        };
        let ops_per_thread = if small {
            5 + rng.gen_range(0..4) as usize
        } else {
            150 + rng.gen_range(0..250) as usize
        };
        let rendezvous_spins = match rng.gen_range(0..3) {
            0 => 0,
            1 => 16,
            _ => 256,
        };
        let scripts = (0..threads)
            .map(|_| {
                let mut script = Vec::new();
                for _ in 0..ops_per_thread {
                    if rng.gen_range(0..3) == 0 {
                        script.push(QueueAction::Yield(1 + rng.gen_range(0..3) as u8));
                    }
                    script.push(if rng.gen_range(0..2) == 0 {
                        QueueAction::Enqueue
                    } else {
                        QueueAction::Dequeue
                    });
                }
                script
            })
            .collect();
        QueueSchedule {
            seed,
            rendezvous_spins,
            scripts,
        }
    }
}

/// Runs a queue schedule, returning the recorded generic-checker
/// history plus the values still in the queue at the end (drained by a
/// final handle, so lost values are detectable).
fn run_queue_schedule(s: &QueueSchedule) -> (Vec<TimedOp<QueueOp<u64>>>, Vec<u64>) {
    // One extra slot for the drain handle below.
    let queue: SecQueue<u64> =
        SecQueue::new(s.scripts.len() + 1).rendezvous_spins(s.rendezvous_spins);
    let rec = Recorder::new();
    let events: Mutex<Vec<TimedOp<QueueOp<u64>>>> = Mutex::new(Vec::new());

    thread::scope(|scope| {
        for (t, script) in s.scripts.iter().enumerate() {
            let queue = &queue;
            let rec = &rec;
            let events = &events;
            scope.spawn(move || {
                let mut h = queue.register();
                let mut local = Vec::new();
                let mut pushed = 0usize;
                for action in script {
                    if let QueueAction::Yield(n) = *action {
                        for _ in 0..n {
                            thread::yield_now();
                        }
                        continue;
                    }
                    let invoke = rec.now();
                    let op = match *action {
                        QueueAction::Enqueue => {
                            let v = (t * 1_000_000 + pushed) as u64;
                            pushed += 1;
                            h.enqueue(v);
                            QueueOp::Enqueue(v)
                        }
                        QueueAction::Dequeue => QueueOp::Dequeue(h.dequeue()),
                        QueueAction::Yield(_) => unreachable!(),
                    };
                    let response = rec.now();
                    local.push(TimedOp {
                        op,
                        invoke,
                        response,
                    });
                }
                events.lock().unwrap().extend(local);
            });
        }
    });
    let mut drain = queue.register();
    let mut drained = Vec::new();
    while let Some(v) = drain.dequeue() {
        drained.push(v);
    }
    (events.into_inner().unwrap(), drained)
}

/// Linear-time conservation pass over a queue history + final drain: no
/// value invented, lost, or dequeued twice (the queue analogue of
/// `check_conservation`, for schedules too large for Wing–Gong).
fn check_queue_conservation(
    history: &[TimedOp<QueueOp<u64>>],
    drained: &[u64],
) -> Result<(), String> {
    let mut enqueued: std::collections::HashSet<u64> = std::collections::HashSet::new();
    let mut dequeued: std::collections::HashSet<u64> = std::collections::HashSet::new();
    for e in history {
        match &e.op {
            QueueOp::Enqueue(v) => {
                if !enqueued.insert(*v) {
                    return Err(format!("value {v} enqueued twice (test bug)"));
                }
            }
            QueueOp::Dequeue(Some(v)) => {
                if !dequeued.insert(*v) {
                    return Err(format!("value {v} dequeued twice"));
                }
            }
            QueueOp::Dequeue(None) => {}
        }
    }
    for v in drained {
        if !dequeued.insert(*v) {
            return Err(format!("value {v} dequeued twice (drain)"));
        }
    }
    if let Some(v) = dequeued.difference(&enqueued).next() {
        return Err(format!("value {v} dequeued but never enqueued"));
    }
    if dequeued.len() != enqueued.len() {
        let lost: Vec<u64> = enqueued.difference(&dequeued).copied().collect();
        return Err(format!(
            "{} value(s) lost (enqueued, never dequeued): {lost:?}",
            lost.len()
        ));
    }
    Ok(())
}

#[test]
fn small_queue_schedules_are_linearizable() {
    let mut saw_rendezvous_off = false;
    let mut saw_rendezvous_on = false;
    let seeds = sweep_seeds(24);
    let full_sweep = coverage_asserts_apply(seeds.len());
    for seed in seeds {
        let schedule = QueueSchedule::derive(seed, true);
        if schedule.rendezvous_spins == 0 {
            saw_rendezvous_off = true;
        } else {
            saw_rendezvous_on = true;
        }
        let (history, drained) = run_queue_schedule(&schedule);
        check_queue_conservation(&history, &drained).unwrap_or_else(|e| {
            panic!(
                "seed {seed} (rdv {}): queue conservation violated: {e}\n{}",
                schedule.rendezvous_spins,
                replay_hint(seed)
            )
        });
        check_generic::<QueueSpec<u64>>(&history).unwrap_or_else(|e| {
            panic!(
                "seed {seed} (rdv {}): queue history not linearizable: {e}\n{}\n{history:#?}",
                schedule.rendezvous_spins,
                replay_hint(seed)
            )
        });
    }
    if full_sweep {
        assert!(
            saw_rendezvous_off && saw_rendezvous_on,
            "sweep must cover both rendezvous settings"
        );
    }
}

#[test]
fn large_queue_schedules_conserve_values() {
    for seed in sweep_seeds(6) {
        let schedule = QueueSchedule::derive(seed, false);
        let (history, drained) = run_queue_schedule(&schedule);
        check_queue_conservation(&history, &drained).unwrap_or_else(|e| {
            panic!(
                "seed {seed}: queue conservation violated: {e}\n{}",
                replay_hint(seed)
            )
        });
    }
}

#[test]
fn identical_seeds_derive_identical_queue_schedules() {
    let a = QueueSchedule::derive(0xD15EA5E, true);
    let b = QueueSchedule::derive(0xD15EA5E, true);
    assert_eq!(a.rendezvous_spins, b.rendezvous_spins);
    assert_eq!(a.seed, b.seed);
    assert_eq!(format!("{:?}", a.scripts), format!("{:?}", b.scripts));
}

#[test]
fn forced_resize_points_reach_both_bounds() {
    // Every adaptive schedule carries the deterministic mid-script
    // toggle, so grow and shrink both happen even if the random resize
    // points all miss.
    for seed in sweep_seeds(16) {
        let schedule = Schedule::derive(seed, true);
        if let Mode::Adaptive { min_k, max_k } = schedule.mode {
            let resizes: Vec<usize> = schedule.scripts[0]
                .iter()
                .filter_map(|a| match a {
                    Action::Resize(k) => Some(*k),
                    _ => None,
                })
                .collect();
            assert!(
                resizes.contains(&max_k) && resizes.contains(&min_k),
                "seed {seed}: mid-script toggle missing: {resizes:?}"
            );
        }
    }
}
