//! Integration: a deterministic schedule-exploring stress harness for
//! the SEC stack, in the spirit of exhaustive-interleaving checkers
//! (the Wing–Gong checker in `crates/linearize` verifies each explored
//! history) and crash/concurrency test rigs like kaist-cp/memento's.
//!
//! A *schedule* is derived entirely from a seed: the thread count, the
//! aggregator mode (Fixed K or Adaptive `[min_k, max_k]`), each
//! thread's operation script (push/pop/peek), the **yield points**
//! injected between operations, and the points at which grow/shrink
//! **resize transitions** are forced into the run. Re-running a seed
//! regenerates the identical schedule, so a failure reproduces by
//! seed alone:
//!
//! ```text
//! SCHEDULE_SEED=42 cargo test --test schedules
//! ```
//!
//! `SCHEDULE_SEEDS=N` widens the sweep (the nightly CI job raises it);
//! seeds that ever exposed a bug belong in `REGRESSION_SEEDS` so every
//! future run replays them first. The OS still owns the physical
//! interleaving — what the seed permutes is where threads *offer*
//! preemption (yield points) and where the aggregator set is resized,
//! which is exactly the surface elastic sharding added.
//!
//! All six families are derived here — stack, queue, deque, pool,
//! counter and map schedules, each checked against its sequential
//! spec — and
//! every schedule additionally draws a **recycling policy** (off, tiny
//! overflowing cache, default), so node reuse across epochs
//! (DESIGN.md §10) is exercised under the same permuted interleavings
//! as everything else.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sec_linearize::spec::counter::{CounterOp, CounterSpec};
use sec_linearize::spec::deque::{DequeOp, DequeSpec};
use sec_linearize::spec::map::{MapOp, MapSpec};
use sec_linearize::spec::pool::{PoolOp, PoolSpec};
use sec_linearize::spec::queue::{QueueOp, QueueSpec};
use sec_linearize::spec::{check_generic, TimedOp};
use sec_repro::ext::{SecCounter, SecDeque, SecMap, SecPool, SecQueue};
use sec_repro::linearize::{check_conservation, check_history, Event, Op, Recorder};
use sec_repro::{RecyclePolicy, SecConfig, SecStack};
use std::sync::Mutex;
use std::thread;

/// Seed-derived recycling policy: schedules must cover recycling off,
/// the default bound, and a tiny bound that forces constant
/// cache-overflow/pool-refill traffic (the widest reuse surface).
fn derive_recycle(rng: &mut SmallRng) -> RecyclePolicy {
    match rng.gen_range(0..3) {
        0 => RecyclePolicy::Off,
        1 => RecyclePolicy::PerThread { cache_cap: 4 },
        _ => RecyclePolicy::per_thread(),
    }
}

/// Aggregator mode a schedule runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Fixed(usize),
    Adaptive { min_k: usize, max_k: usize },
}

/// One step of a thread's script.
#[derive(Debug, Clone, Copy)]
enum Action {
    /// Push the next globally-unique value.
    Push,
    Pop,
    Peek,
    /// Push the next `n` globally-unique values through one
    /// `push_many` announcement (recorded as `n` push events sharing
    /// the call's interval — the batch linearizes inside it).
    PushMany(u8),
    /// Pop up to `n` values through one `pop_many` announcement.
    PopMany(u8),
    /// Offer preemption `n` times before the next step.
    Yield(u8),
    /// Force the active aggregator count to `k` (no-op under Fixed).
    Resize(usize),
}

/// A fully materialized schedule: everything the run does, derived
/// deterministically from `seed`.
#[derive(Debug)]
struct Schedule {
    seed: u64,
    mode: Mode,
    /// Node-recycling policy the stack runs under (reuse across epochs
    /// must be invisible to every checker).
    recycle: RecyclePolicy,
    scripts: Vec<Vec<Action>>,
}

impl Schedule {
    /// Derives a schedule. `small` keeps histories inside the
    /// exponential Wing–Gong checker's reach; large schedules are
    /// checked by the linear-time conservation pass instead.
    fn derive(seed: u64, small: bool) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let threads = if small {
            2 + (rng.gen_range(0..2)) as usize
        } else {
            4 + (rng.gen_range(0..4)) as usize
        };
        let ops_per_thread = if small {
            5 + rng.gen_range(0..4) as usize
        } else {
            150 + rng.gen_range(0..250) as usize
        };
        let mode = match rng.gen_range(0..4) {
            0 => Mode::Fixed(1 + rng.gen_range(0..3) as usize),
            _ => {
                let min_k = 1 + rng.gen_range(0..2) as usize;
                let max_k = min_k + 1 + rng.gen_range(0..3) as usize;
                Mode::Adaptive { min_k, max_k }
            }
        };
        let recycle = derive_recycle(&mut rng);
        let (min_k, max_k) = match mode {
            Mode::Fixed(k) => (k, k),
            Mode::Adaptive { min_k, max_k } => (min_k, max_k),
        };

        let scripts = (0..threads)
            .map(|t| {
                let mut script = Vec::new();
                for i in 0..ops_per_thread {
                    // Permuted yield points: where this thread offers
                    // preemption, and how insistently.
                    if rng.gen_range(0..3) == 0 {
                        script.push(Action::Yield(1 + rng.gen_range(0..3) as u8));
                    }
                    // Resize points: forced grow/shrink transitions
                    // scattered through the run, plus a deterministic
                    // toggle at mid-script on thread 0 so every
                    // adaptive schedule exercises both directions.
                    if max_k > min_k {
                        if rng.gen_range(0..8) == 0 {
                            let span = (max_k - min_k + 1) as u32;
                            script.push(Action::Resize(min_k + rng.gen_range(0..span) as usize));
                        }
                        if t == 0 && i == ops_per_thread / 2 {
                            script.push(Action::Resize(max_k));
                            script.push(Action::Resize(min_k));
                        }
                    }
                    // Bulk ops ride the same scripts: small schedules
                    // keep slices tiny so the Wing–Gong history stays
                    // checkable, large ones stretch them.
                    let bulk_span = if small { 3u32 } else { 8 };
                    script.push(match rng.gen_range(0..7) {
                        0 | 1 => Action::Push,
                        2 | 3 => Action::Pop,
                        4 => Action::Peek,
                        5 => Action::PushMany(1 + rng.gen_range(0..bulk_span) as u8),
                        _ => Action::PopMany(1 + rng.gen_range(0..bulk_span) as u8),
                    });
                }
                script
            })
            .collect();
        Schedule {
            seed,
            mode,
            recycle,
            scripts,
        }
    }

    fn config(&self) -> SecConfig {
        let max_threads = self.scripts.len();
        let base = match self.mode {
            Mode::Fixed(k) => SecConfig::new(k, max_threads),
            // Tiny window: the monitor itself also decides
            // mid-schedule, on top of the forced transitions.
            Mode::Adaptive { min_k, max_k } => {
                SecConfig::adaptive_windowed(min_k, max_k, 32, max_threads)
            }
        };
        base.recycle(self.recycle)
    }
}

/// Runs a schedule, returning the recorded history and the resize
/// transition count ((grows, shrinks) from `SecStats`).
fn run_schedule(s: &Schedule) -> (Vec<Event<u64>>, (u64, u64)) {
    let stack: SecStack<u64> = SecStack::with_config(s.config());
    let rec = Recorder::new();
    let events: Mutex<Vec<Event<u64>>> = Mutex::new(Vec::new());

    thread::scope(|scope| {
        for (t, script) in s.scripts.iter().enumerate() {
            let stack = &stack;
            let rec = &rec;
            let events = &events;
            scope.spawn(move || {
                let mut h = stack.register();
                let mut local = Vec::new();
                let mut pushed = 0usize;
                for action in script {
                    match *action {
                        Action::Yield(n) => {
                            for _ in 0..n {
                                thread::yield_now();
                            }
                            continue;
                        }
                        Action::Resize(k) => {
                            stack.set_active_aggregators(k);
                            continue;
                        }
                        _ => {}
                    }
                    let invoke = rec.now();
                    // Bulk actions expand into one event per element:
                    // the whole slice linearizes somewhere inside the
                    // single call's [invoke, response] interval, so
                    // giving every element that interval is sound (any
                    // order the checker finds within it is one the
                    // batch could have taken).
                    match *action {
                        Action::PushMany(n) => {
                            let vals: Vec<u64> = (0..n as usize)
                                .map(|i| (t * 1_000_000 + pushed + i) as u64)
                                .collect();
                            pushed += n as usize;
                            h.push_many(&vals);
                            let response = rec.now();
                            for v in vals {
                                local.push(Event {
                                    thread: t,
                                    op: Op::Push(v),
                                    invoke,
                                    response,
                                });
                            }
                            continue;
                        }
                        Action::PopMany(n) => {
                            let mut out = Vec::with_capacity(n as usize);
                            let got = h.pop_many(&mut out, n as usize);
                            let response = rec.now();
                            for v in out {
                                local.push(Event {
                                    thread: t,
                                    op: Op::Pop(Some(v)),
                                    invoke,
                                    response,
                                });
                            }
                            // Unserved requests saw an empty stack at
                            // the batch's linearization point.
                            for _ in got..n as usize {
                                local.push(Event {
                                    thread: t,
                                    op: Op::Pop(None),
                                    invoke,
                                    response,
                                });
                            }
                            continue;
                        }
                        _ => {}
                    }
                    let op = match *action {
                        Action::Push => {
                            let v = (t * 1_000_000 + pushed) as u64;
                            pushed += 1;
                            h.push(v);
                            Op::Push(v)
                        }
                        Action::Pop => Op::Pop(h.pop()),
                        Action::Peek => Op::Peek(h.peek()),
                        _ => unreachable!(),
                    };
                    let response = rec.now();
                    local.push(Event {
                        thread: t,
                        op,
                        invoke,
                        response,
                    });
                }
                events.lock().unwrap().extend(local);
            });
        }
    });

    let report = stack.stats().report();
    let active = stack.active_aggregators();
    let (min_k, max_k) = match s.mode {
        Mode::Fixed(k) => (k, k),
        Mode::Adaptive { min_k, max_k } => (min_k, max_k),
    };
    assert!(
        (min_k..=max_k).contains(&active),
        "seed {}: final active {active} escaped [{min_k}, {max_k}]",
        s.seed
    );
    (events.into_inner().unwrap(), (report.grows, report.shrinks))
}

/// Seeds that previously exposed a bug: replayed first on every run so
/// a fixed failure stays fixed. (Empty so far — move offenders here.)
const REGRESSION_SEEDS: &[u64] = &[];

const SEED_BASE: u64 = 0x5EC5_C4ED;

fn sweep_seeds(default_count: u64) -> Vec<u64> {
    if let Ok(s) = std::env::var("SCHEDULE_SEED") {
        let seed = s.parse().expect("SCHEDULE_SEED must be a u64");
        return vec![seed];
    }
    let n = std::env::var("SCHEDULE_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default_count);
    REGRESSION_SEEDS
        .iter()
        .copied()
        .chain((0..n).map(|i| SEED_BASE.wrapping_add(i)))
        .collect()
}

fn replay_hint(seed: u64) -> String {
    format!("replay with: SCHEDULE_SEED={seed} cargo test --test schedules")
}

/// `true` when this run sweeps enough seeds for coverage assertions
/// (mode mix, transitions) to be meaningful. A `SCHEDULE_SEED` replay
/// runs exactly one schedule and a tiny `SCHEDULE_SEEDS` sweep may
/// draw only one mode — asserting coverage there would mask the very
/// failure being replayed with a spurious one.
fn coverage_asserts_apply(seed_count: usize) -> bool {
    std::env::var("SCHEDULE_SEED").is_err() && seed_count >= 16
}

#[test]
fn small_schedules_are_linearizable_across_fixed_and_adaptive_modes() {
    let mut adaptive_transitions = 0u64;
    let mut saw_fixed = false;
    let mut saw_adaptive = false;
    let mut saw_recycle_on = false;
    let mut saw_recycle_off = false;
    let seeds = sweep_seeds(32);
    let full_sweep = coverage_asserts_apply(seeds.len());
    for seed in seeds {
        let schedule = Schedule::derive(seed, true);
        match schedule.mode {
            Mode::Fixed(_) => saw_fixed = true,
            Mode::Adaptive { .. } => saw_adaptive = true,
        }
        if schedule.recycle.is_on() {
            saw_recycle_on = true;
        } else {
            saw_recycle_off = true;
        }
        let (history, (grows, shrinks)) = run_schedule(&schedule);
        check_conservation(&history).unwrap_or_else(|e| {
            panic!(
                "seed {seed} ({:?}): conservation violated: {e}\n{}",
                schedule.mode,
                replay_hint(seed)
            )
        });
        check_history(&history).unwrap_or_else(|e| {
            panic!(
                "seed {seed} ({:?}): history not linearizable: {e}\n{}\n{history:#?}",
                schedule.mode,
                replay_hint(seed)
            )
        });
        adaptive_transitions += grows + shrinks;
    }
    // A full sweep must genuinely explore the surface it claims to:
    // both modes, and actual grow/shrink transitions mid-history.
    // (Single-seed replays and tiny sweeps skip these coverage checks.)
    if full_sweep {
        assert!(saw_fixed, "sweep never generated a Fixed schedule");
        assert!(saw_adaptive, "sweep never generated an Adaptive schedule");
        assert!(
            adaptive_transitions > 0,
            "no resize transition was exercised across the whole sweep"
        );
        assert!(
            saw_recycle_on && saw_recycle_off,
            "sweep must cover recycling both on and off"
        );
    }
}

#[test]
fn large_schedules_conserve_values_and_drain_clean() {
    // Derived from the seed directly (no transformation), so the
    // printed replay seed regenerates exactly the failing schedule —
    // `derive(seed, small = false)` already differs from the small
    // test's derivation of the same seed.
    for seed in sweep_seeds(6) {
        let schedule = Schedule::derive(seed, false);
        let (history, _) = run_schedule(&schedule);
        check_conservation(&history).unwrap_or_else(|e| {
            panic!(
                "seed {seed} ({:?}): conservation violated: {e}\n{}",
                schedule.mode,
                replay_hint(seed)
            )
        });
    }
}

#[test]
fn identical_seeds_derive_identical_schedules() {
    // The replay guarantee: a seed fully determines the schedule.
    let a = Schedule::derive(0xD15EA5E, true);
    let b = Schedule::derive(0xD15EA5E, true);
    assert_eq!(a.mode, b.mode);
    assert_eq!(a.scripts.len(), b.scripts.len());
    for (sa, sb) in a.scripts.iter().zip(&b.scripts) {
        assert_eq!(format!("{sa:?}"), format!("{sb:?}"));
    }
}

// ----------------------------------------------------------------------
// Queue schedules: the same seed-derived harness, retargeted at the
// SecQueue tentpole (per-end batches have their own interleaving
// surface — batch cuts, the swing-then-link gap, and the empty
// rendezvous window — permuted here through yield points and a
// seed-chosen rendezvous budget).
// ----------------------------------------------------------------------

/// One step of a queue thread's script.
#[derive(Debug, Clone, Copy)]
enum QueueAction {
    /// Enqueue the next globally-unique value.
    Enqueue,
    Dequeue,
    /// Enqueue the next `n` values through one `enqueue_many`
    /// announcement (the block stays contiguous in FIFO order).
    EnqueueMany(u8),
    /// Dequeue up to `n` values through one `dequeue_many`
    /// announcement.
    DequeueMany(u8),
    /// Offer preemption `n` times before the next step.
    Yield(u8),
}

/// A seed-derived queue schedule.
#[derive(Debug)]
struct QueueSchedule {
    seed: u64,
    /// Rendezvous window (0 disables empty-only elimination — both
    /// paths must appear across a sweep).
    rendezvous_spins: u32,
    /// Node-recycling policy the queue runs under.
    recycle: RecyclePolicy,
    scripts: Vec<Vec<QueueAction>>,
}

impl QueueSchedule {
    fn derive(seed: u64, small: bool) -> Self {
        // Distinct stream from the stack schedules of the same seed.
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x000F_EED0_5EC0_FEE0);
        let threads = if small {
            2 + rng.gen_range(0..2) as usize
        } else {
            4 + rng.gen_range(0..4) as usize
        };
        let ops_per_thread = if small {
            5 + rng.gen_range(0..4) as usize
        } else {
            150 + rng.gen_range(0..250) as usize
        };
        let rendezvous_spins = match rng.gen_range(0..3) {
            0 => 0,
            1 => 16,
            _ => 256,
        };
        let recycle = derive_recycle(&mut rng);
        let scripts = (0..threads)
            .map(|_| {
                let mut script = Vec::new();
                for _ in 0..ops_per_thread {
                    if rng.gen_range(0..3) == 0 {
                        script.push(QueueAction::Yield(1 + rng.gen_range(0..3) as u8));
                    }
                    let bulk_span = if small { 3u32 } else { 8 };
                    script.push(match rng.gen_range(0..6) {
                        0 | 1 => QueueAction::Enqueue,
                        2 | 3 => QueueAction::Dequeue,
                        4 => QueueAction::EnqueueMany(1 + rng.gen_range(0..bulk_span) as u8),
                        _ => QueueAction::DequeueMany(1 + rng.gen_range(0..bulk_span) as u8),
                    });
                }
                script
            })
            .collect();
        QueueSchedule {
            seed,
            rendezvous_spins,
            recycle,
            scripts,
        }
    }
}

/// Runs a queue schedule, returning the recorded generic-checker
/// history plus the values still in the queue at the end (drained by a
/// final handle, so lost values are detectable).
fn run_queue_schedule(s: &QueueSchedule) -> (Vec<TimedOp<QueueOp<u64>>>, Vec<u64>) {
    // One extra slot for the drain handle below.
    let queue: SecQueue<u64> = SecQueue::new(s.scripts.len() + 1)
        .rendezvous_spins(s.rendezvous_spins)
        .recycle_policy(s.recycle);
    let rec = Recorder::new();
    let events: Mutex<Vec<TimedOp<QueueOp<u64>>>> = Mutex::new(Vec::new());

    thread::scope(|scope| {
        for (t, script) in s.scripts.iter().enumerate() {
            let queue = &queue;
            let rec = &rec;
            let events = &events;
            scope.spawn(move || {
                let mut h = queue.register();
                let mut local = Vec::new();
                let mut pushed = 0usize;
                for action in script {
                    if let QueueAction::Yield(n) = *action {
                        for _ in 0..n {
                            thread::yield_now();
                        }
                        continue;
                    }
                    let invoke = rec.now();
                    // Bulk calls expand into one event per element
                    // sharing the call's interval (the batch
                    // linearizes inside it) — same convention as the
                    // stack schedules.
                    match *action {
                        QueueAction::EnqueueMany(n) => {
                            let vals: Vec<u64> = (0..n as usize)
                                .map(|i| (t * 1_000_000 + pushed + i) as u64)
                                .collect();
                            pushed += n as usize;
                            h.enqueue_many(&vals);
                            let response = rec.now();
                            for v in vals {
                                local.push(TimedOp {
                                    op: QueueOp::Enqueue(v),
                                    invoke,
                                    response,
                                });
                            }
                            continue;
                        }
                        QueueAction::DequeueMany(n) => {
                            let mut out = Vec::with_capacity(n as usize);
                            let got = h.dequeue_many(&mut out, n as usize);
                            let response = rec.now();
                            for v in out {
                                local.push(TimedOp {
                                    op: QueueOp::Dequeue(Some(v)),
                                    invoke,
                                    response,
                                });
                            }
                            for _ in got..n as usize {
                                local.push(TimedOp {
                                    op: QueueOp::Dequeue(None),
                                    invoke,
                                    response,
                                });
                            }
                            continue;
                        }
                        _ => {}
                    }
                    let op = match *action {
                        QueueAction::Enqueue => {
                            let v = (t * 1_000_000 + pushed) as u64;
                            pushed += 1;
                            h.enqueue(v);
                            QueueOp::Enqueue(v)
                        }
                        QueueAction::Dequeue => QueueOp::Dequeue(h.dequeue()),
                        _ => unreachable!(),
                    };
                    let response = rec.now();
                    local.push(TimedOp {
                        op,
                        invoke,
                        response,
                    });
                }
                events.lock().unwrap().extend(local);
            });
        }
    });
    let mut drain = queue.register();
    let mut drained = Vec::new();
    while let Some(v) = drain.dequeue() {
        drained.push(v);
    }
    (events.into_inner().unwrap(), drained)
}

/// Linear-time conservation pass over a queue history + final drain: no
/// value invented, lost, or dequeued twice (the queue analogue of
/// `check_conservation`, for schedules too large for Wing–Gong).
fn check_queue_conservation(
    history: &[TimedOp<QueueOp<u64>>],
    drained: &[u64],
) -> Result<(), String> {
    let mut enqueued: std::collections::HashSet<u64> = std::collections::HashSet::new();
    let mut dequeued: std::collections::HashSet<u64> = std::collections::HashSet::new();
    for e in history {
        match &e.op {
            QueueOp::Enqueue(v) => {
                if !enqueued.insert(*v) {
                    return Err(format!("value {v} enqueued twice (test bug)"));
                }
            }
            QueueOp::Dequeue(Some(v)) => {
                if !dequeued.insert(*v) {
                    return Err(format!("value {v} dequeued twice"));
                }
            }
            QueueOp::Dequeue(None) => {}
        }
    }
    for v in drained {
        if !dequeued.insert(*v) {
            return Err(format!("value {v} dequeued twice (drain)"));
        }
    }
    if let Some(v) = dequeued.difference(&enqueued).next() {
        return Err(format!("value {v} dequeued but never enqueued"));
    }
    if dequeued.len() != enqueued.len() {
        let lost: Vec<u64> = enqueued.difference(&dequeued).copied().collect();
        return Err(format!(
            "{} value(s) lost (enqueued, never dequeued): {lost:?}",
            lost.len()
        ));
    }
    Ok(())
}

#[test]
fn small_queue_schedules_are_linearizable() {
    let mut saw_rendezvous_off = false;
    let mut saw_rendezvous_on = false;
    let mut saw_recycle_on = false;
    let mut saw_recycle_off = false;
    let seeds = sweep_seeds(24);
    let full_sweep = coverage_asserts_apply(seeds.len());
    for seed in seeds {
        let schedule = QueueSchedule::derive(seed, true);
        if schedule.rendezvous_spins == 0 {
            saw_rendezvous_off = true;
        } else {
            saw_rendezvous_on = true;
        }
        if schedule.recycle.is_on() {
            saw_recycle_on = true;
        } else {
            saw_recycle_off = true;
        }
        let (history, drained) = run_queue_schedule(&schedule);
        check_queue_conservation(&history, &drained).unwrap_or_else(|e| {
            panic!(
                "seed {seed} (rdv {}): queue conservation violated: {e}\n{}",
                schedule.rendezvous_spins,
                replay_hint(seed)
            )
        });
        check_generic::<QueueSpec<u64>>(&history).unwrap_or_else(|e| {
            panic!(
                "seed {seed} (rdv {}): queue history not linearizable: {e}\n{}\n{history:#?}",
                schedule.rendezvous_spins,
                replay_hint(seed)
            )
        });
    }
    if full_sweep {
        assert!(
            saw_rendezvous_off && saw_rendezvous_on,
            "sweep must cover both rendezvous settings"
        );
        assert!(
            saw_recycle_on && saw_recycle_off,
            "sweep must cover recycling both on and off"
        );
    }
}

#[test]
fn large_queue_schedules_conserve_values() {
    for seed in sweep_seeds(6) {
        let schedule = QueueSchedule::derive(seed, false);
        let (history, drained) = run_queue_schedule(&schedule);
        check_queue_conservation(&history, &drained).unwrap_or_else(|e| {
            panic!(
                "seed {seed}: queue conservation violated: {e}\n{}",
                replay_hint(seed)
            )
        });
    }
}

#[test]
fn identical_seeds_derive_identical_queue_schedules() {
    let a = QueueSchedule::derive(0xD15EA5E, true);
    let b = QueueSchedule::derive(0xD15EA5E, true);
    assert_eq!(a.rendezvous_spins, b.rendezvous_spins);
    assert_eq!(a.recycle, b.recycle);
    assert_eq!(a.seed, b.seed);
    assert_eq!(format!("{:?}", a.scripts), format!("{:?}", b.scripts));
}

// ----------------------------------------------------------------------
// Deque schedules: the same seed-derived harness over the two-ended
// extension (today's third family with its own batch layer per end),
// checked against the generic deque spec — with recycling on and off,
// since combiners both retire and re-allocate result nodes mid-batch.
// ----------------------------------------------------------------------

/// One step of a deque thread's script.
#[derive(Debug, Clone, Copy)]
enum DequeAction {
    /// Push the next globally-unique value at the given end.
    PushFront,
    PushBack,
    PopFront,
    PopBack,
    /// Offer preemption `n` times before the next step.
    Yield(u8),
}

/// A seed-derived deque schedule.
#[derive(Debug)]
struct DequeSchedule {
    recycle: RecyclePolicy,
    scripts: Vec<Vec<DequeAction>>,
}

impl DequeSchedule {
    fn derive(seed: u64, small: bool) -> Self {
        // Distinct stream from the other families' schedules.
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x00DE_00E5_EC0D_E00E);
        let threads = if small {
            2 + rng.gen_range(0..2) as usize
        } else {
            4 + rng.gen_range(0..4) as usize
        };
        let ops_per_thread = if small {
            4 + rng.gen_range(0..4) as usize
        } else {
            150 + rng.gen_range(0..250) as usize
        };
        let recycle = derive_recycle(&mut rng);
        let scripts = (0..threads)
            .map(|_| {
                let mut script = Vec::new();
                for _ in 0..ops_per_thread {
                    if rng.gen_range(0..3) == 0 {
                        script.push(DequeAction::Yield(1 + rng.gen_range(0..3) as u8));
                    }
                    script.push(match rng.gen_range(0..4) {
                        0 => DequeAction::PushFront,
                        1 => DequeAction::PushBack,
                        2 => DequeAction::PopFront,
                        _ => DequeAction::PopBack,
                    });
                }
                script
            })
            .collect();
        DequeSchedule { recycle, scripts }
    }
}

/// Runs a deque schedule, returning the recorded history plus the
/// values left in the deque at the end (drained front-first).
fn run_deque_schedule(s: &DequeSchedule) -> (Vec<TimedOp<DequeOp<u64>>>, Vec<u64>) {
    // One extra slot for the drain handle below.
    let deque: SecDeque<u64> = SecDeque::new(s.scripts.len() + 1).recycle_policy(s.recycle);
    let rec = Recorder::new();
    let events: Mutex<Vec<TimedOp<DequeOp<u64>>>> = Mutex::new(Vec::new());

    thread::scope(|scope| {
        for (t, script) in s.scripts.iter().enumerate() {
            let deque = &deque;
            let rec = &rec;
            let events = &events;
            scope.spawn(move || {
                let mut h = deque.register();
                let mut local = Vec::new();
                let mut pushed = 0usize;
                for action in script {
                    if let DequeAction::Yield(n) = *action {
                        for _ in 0..n {
                            thread::yield_now();
                        }
                        continue;
                    }
                    let mut next_value = || {
                        let v = (t * 1_000_000 + pushed) as u64;
                        pushed += 1;
                        v
                    };
                    let invoke = rec.now();
                    let op = match *action {
                        DequeAction::PushFront => {
                            let v = next_value();
                            h.push_front(v);
                            DequeOp::PushFront(v)
                        }
                        DequeAction::PushBack => {
                            let v = next_value();
                            h.push_back(v);
                            DequeOp::PushBack(v)
                        }
                        DequeAction::PopFront => DequeOp::PopFront(h.pop_front()),
                        DequeAction::PopBack => DequeOp::PopBack(h.pop_back()),
                        DequeAction::Yield(_) => unreachable!(),
                    };
                    let response = rec.now();
                    local.push(TimedOp {
                        op,
                        invoke,
                        response,
                    });
                }
                events.lock().unwrap().extend(local);
            });
        }
    });
    let mut drain = deque.register();
    let mut drained = Vec::new();
    while let Some(v) = drain.pop_front() {
        drained.push(v);
    }
    (events.into_inner().unwrap(), drained)
}

/// Linear-time conservation pass over a deque history + final drain.
fn check_deque_conservation(
    history: &[TimedOp<DequeOp<u64>>],
    drained: &[u64],
) -> Result<(), String> {
    let mut pushed: std::collections::HashSet<u64> = std::collections::HashSet::new();
    let mut popped: std::collections::HashSet<u64> = std::collections::HashSet::new();
    for e in history {
        match &e.op {
            DequeOp::PushFront(v) | DequeOp::PushBack(v) => {
                if !pushed.insert(*v) {
                    return Err(format!("value {v} pushed twice (test bug)"));
                }
            }
            DequeOp::PopFront(Some(v)) | DequeOp::PopBack(Some(v)) => {
                if !popped.insert(*v) {
                    return Err(format!("value {v} popped twice"));
                }
            }
            DequeOp::PopFront(None) | DequeOp::PopBack(None) => {}
        }
    }
    for v in drained {
        if !popped.insert(*v) {
            return Err(format!("value {v} popped twice (drain)"));
        }
    }
    if let Some(v) = popped.difference(&pushed).next() {
        return Err(format!("value {v} popped but never pushed"));
    }
    if popped.len() != pushed.len() {
        let lost: Vec<u64> = pushed.difference(&popped).copied().collect();
        return Err(format!("{} value(s) lost: {lost:?}", lost.len()));
    }
    Ok(())
}

#[test]
fn small_deque_schedules_are_linearizable() {
    let mut saw_recycle_on = false;
    let mut saw_recycle_off = false;
    let seeds = sweep_seeds(24);
    let full_sweep = coverage_asserts_apply(seeds.len());
    for seed in seeds {
        let schedule = DequeSchedule::derive(seed, true);
        if schedule.recycle.is_on() {
            saw_recycle_on = true;
        } else {
            saw_recycle_off = true;
        }
        let (history, drained) = run_deque_schedule(&schedule);
        check_deque_conservation(&history, &drained).unwrap_or_else(|e| {
            panic!(
                "seed {seed} ({:?}): deque conservation violated: {e}\n{}",
                schedule.recycle,
                replay_hint(seed)
            )
        });
        check_generic::<DequeSpec<u64>>(&history).unwrap_or_else(|e| {
            panic!(
                "seed {seed} ({:?}): deque history not linearizable: {e}\n{}\n{history:#?}",
                schedule.recycle,
                replay_hint(seed)
            )
        });
    }
    if full_sweep {
        assert!(
            saw_recycle_on && saw_recycle_off,
            "deque sweep must cover recycling both on and off"
        );
    }
}

#[test]
fn large_deque_schedules_conserve_values() {
    for seed in sweep_seeds(6) {
        let schedule = DequeSchedule::derive(seed, false);
        let (history, drained) = run_deque_schedule(&schedule);
        check_deque_conservation(&history, &drained).unwrap_or_else(|e| {
            panic!(
                "seed {seed}: deque conservation violated: {e}\n{}",
                replay_hint(seed)
            )
        });
    }
}

#[test]
fn identical_seeds_derive_identical_deque_schedules() {
    let a = DequeSchedule::derive(0xD15EA5E, true);
    let b = DequeSchedule::derive(0xD15EA5E, true);
    assert_eq!(a.recycle, b.recycle);
    assert_eq!(format!("{:?}", a.scripts), format!("{:?}", b.scripts));
}

// ----------------------------------------------------------------------
// Pool schedules: the sharded-stack extension under the multiset spec
// (put/get with stealing destroy LIFO order — the bag contract is what
// must survive recycling).
// ----------------------------------------------------------------------

/// One step of a pool thread's script.
#[derive(Debug, Clone, Copy)]
enum PoolAction {
    /// Put the next globally-unique value.
    Put,
    Get,
    /// Offer preemption `n` times before the next step.
    Yield(u8),
}

/// A seed-derived pool schedule.
#[derive(Debug)]
struct PoolSchedule {
    shards: usize,
    recycle: RecyclePolicy,
    scripts: Vec<Vec<PoolAction>>,
}

impl PoolSchedule {
    fn derive(seed: u64, small: bool) -> Self {
        // Distinct stream from the other families' schedules.
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x0000_B00C_5EC0_0701);
        let threads = if small {
            2 + rng.gen_range(0..2) as usize
        } else {
            4 + rng.gen_range(0..4) as usize
        };
        let ops_per_thread = if small {
            4 + rng.gen_range(0..4) as usize
        } else {
            150 + rng.gen_range(0..250) as usize
        };
        let shards = 1 + rng.gen_range(0..3) as usize;
        let recycle = derive_recycle(&mut rng);
        let scripts = (0..threads)
            .map(|_| {
                let mut script = Vec::new();
                for _ in 0..ops_per_thread {
                    if rng.gen_range(0..3) == 0 {
                        script.push(PoolAction::Yield(1 + rng.gen_range(0..3) as u8));
                    }
                    script.push(if rng.gen_range(0..2) == 0 {
                        PoolAction::Put
                    } else {
                        PoolAction::Get
                    });
                }
                script
            })
            .collect();
        PoolSchedule {
            shards,
            recycle,
            scripts,
        }
    }
}

/// Runs a pool schedule, returning the history plus the final drain.
fn run_pool_schedule(s: &PoolSchedule) -> (Vec<TimedOp<PoolOp<u64>>>, Vec<u64>) {
    // One extra slot for the drain handle below.
    let pool: SecPool<u64> = SecPool::with_recycle(s.shards, s.scripts.len() + 1, s.recycle);
    let rec = Recorder::new();
    let events: Mutex<Vec<TimedOp<PoolOp<u64>>>> = Mutex::new(Vec::new());

    thread::scope(|scope| {
        for (t, script) in s.scripts.iter().enumerate() {
            let pool = &pool;
            let rec = &rec;
            let events = &events;
            scope.spawn(move || {
                let mut h = pool.register();
                let mut local = Vec::new();
                let mut pushed = 0usize;
                for action in script {
                    if let PoolAction::Yield(n) = *action {
                        for _ in 0..n {
                            thread::yield_now();
                        }
                        continue;
                    }
                    let invoke = rec.now();
                    let op = match *action {
                        PoolAction::Put => {
                            let v = (t * 1_000_000 + pushed) as u64;
                            pushed += 1;
                            h.put(v);
                            PoolOp::Put(v)
                        }
                        PoolAction::Get => PoolOp::Get(h.get()),
                        PoolAction::Yield(_) => unreachable!(),
                    };
                    let response = rec.now();
                    local.push(TimedOp {
                        op,
                        invoke,
                        response,
                    });
                }
                events.lock().unwrap().extend(local);
            });
        }
    });
    let mut drain = pool.register();
    let mut drained = Vec::new();
    while let Some(v) = drain.get() {
        drained.push(v);
    }
    (events.into_inner().unwrap(), drained)
}

/// Linear-time conservation pass over a pool history + final drain.
fn check_pool_conservation(
    history: &[TimedOp<PoolOp<u64>>],
    drained: &[u64],
) -> Result<(), String> {
    let mut put: std::collections::HashSet<u64> = std::collections::HashSet::new();
    let mut got: std::collections::HashSet<u64> = std::collections::HashSet::new();
    for e in history {
        match &e.op {
            PoolOp::Put(v) => {
                if !put.insert(*v) {
                    return Err(format!("value {v} put twice (test bug)"));
                }
            }
            PoolOp::Get(Some(v)) => {
                if !got.insert(*v) {
                    return Err(format!("value {v} got twice"));
                }
            }
            PoolOp::Get(None) => {}
        }
    }
    for v in drained {
        if !got.insert(*v) {
            return Err(format!("value {v} got twice (drain)"));
        }
    }
    if let Some(v) = got.difference(&put).next() {
        return Err(format!("value {v} got but never put"));
    }
    if got.len() != put.len() {
        let lost: Vec<u64> = put.difference(&got).copied().collect();
        return Err(format!("{} value(s) lost: {lost:?}", lost.len()));
    }
    Ok(())
}

#[test]
fn small_pool_schedules_are_linearizable() {
    let mut saw_recycle_on = false;
    let mut saw_recycle_off = false;
    let mut saw_multi_shard = false;
    let seeds = sweep_seeds(24);
    let full_sweep = coverage_asserts_apply(seeds.len());
    for seed in seeds {
        let schedule = PoolSchedule::derive(seed, true);
        if schedule.recycle.is_on() {
            saw_recycle_on = true;
        } else {
            saw_recycle_off = true;
        }
        if schedule.shards > 1 {
            saw_multi_shard = true;
        }
        let (history, drained) = run_pool_schedule(&schedule);
        check_pool_conservation(&history, &drained).unwrap_or_else(|e| {
            panic!(
                "seed {seed} ({:?}, {} shards): pool conservation violated: {e}\n{}",
                schedule.recycle,
                schedule.shards,
                replay_hint(seed)
            )
        });
        check_generic::<PoolSpec<u64>>(&history).unwrap_or_else(|e| {
            panic!(
                "seed {seed} ({:?}, {} shards): pool history not linearizable: {e}\n{}\n{history:#?}",
                schedule.recycle,
                schedule.shards,
                replay_hint(seed)
            )
        });
    }
    if full_sweep {
        assert!(
            saw_recycle_on && saw_recycle_off,
            "pool sweep must cover recycling both on and off"
        );
        assert!(saw_multi_shard, "pool sweep must cover multi-shard pools");
    }
}

#[test]
fn large_pool_schedules_conserve_values() {
    for seed in sweep_seeds(6) {
        let schedule = PoolSchedule::derive(seed, false);
        let (history, drained) = run_pool_schedule(&schedule);
        check_pool_conservation(&history, &drained).unwrap_or_else(|e| {
            panic!(
                "seed {seed}: pool conservation violated: {e}\n{}",
                replay_hint(seed)
            )
        });
    }
}

#[test]
fn identical_seeds_derive_identical_pool_schedules() {
    let a = PoolSchedule::derive(0xD15EA5E, true);
    let b = PoolSchedule::derive(0xD15EA5E, true);
    assert_eq!(a.recycle, b.recycle);
    assert_eq!(a.shards, b.shards);
    assert_eq!(format!("{:?}", a.scripts), format!("{:?}", b.scripts));
}

// ----------------------------------------------------------------------
// Counter schedules: the same seed-derived harness over `SecCounter`,
// the homogeneous engine instantiation (DESIGN.md §12). The protocol
// surface under permutation is pure engine — announcement, freezer
// election, combining, publish, elastic re-mapping — with zero
// family-specific structure, so a counter failure localizes a bug to
// `crates/core/src/combine` directly.
// ----------------------------------------------------------------------

/// One step of a counter thread's script.
#[derive(Debug, Clone, Copy)]
enum CounterAction {
    /// `fetch_add(operand)`; operands stay ≥ 1 so observed pre-values
    /// are unique and the chain check below is exact.
    FetchAdd(u64),
    Load,
    /// Offer preemption `n` times before the next step.
    Yield(u8),
    /// Force the active aggregator count to `k` (no-op under Fixed).
    Resize(usize),
}

/// A seed-derived counter schedule.
#[derive(Debug)]
struct CounterSchedule {
    mode: Mode,
    recycle: RecyclePolicy,
    scripts: Vec<Vec<CounterAction>>,
}

impl CounterSchedule {
    fn derive(seed: u64, small: bool) -> Self {
        // Distinct stream from the other families' schedules.
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x0000_C047_5EC0_0ADD);
        let threads = if small {
            2 + rng.gen_range(0..2) as usize
        } else {
            4 + rng.gen_range(0..4) as usize
        };
        let ops_per_thread = if small {
            5 + rng.gen_range(0..4) as usize
        } else {
            150 + rng.gen_range(0..250) as usize
        };
        let mode = match rng.gen_range(0..4) {
            0 => Mode::Fixed(1 + rng.gen_range(0..3) as usize),
            _ => {
                let min_k = 1 + rng.gen_range(0..2) as usize;
                let max_k = min_k + 1 + rng.gen_range(0..3) as usize;
                Mode::Adaptive { min_k, max_k }
            }
        };
        let recycle = derive_recycle(&mut rng);
        let (min_k, max_k) = match mode {
            Mode::Fixed(k) => (k, k),
            Mode::Adaptive { min_k, max_k } => (min_k, max_k),
        };
        let scripts = (0..threads)
            .map(|t| {
                let mut script = Vec::new();
                for i in 0..ops_per_thread {
                    if rng.gen_range(0..3) == 0 {
                        script.push(CounterAction::Yield(1 + rng.gen_range(0..3) as u8));
                    }
                    if max_k > min_k {
                        if rng.gen_range(0..8) == 0 {
                            let span = (max_k - min_k + 1) as u32;
                            script.push(CounterAction::Resize(
                                min_k + rng.gen_range(0..span) as usize,
                            ));
                        }
                        if t == 0 && i == ops_per_thread / 2 {
                            script.push(CounterAction::Resize(max_k));
                            script.push(CounterAction::Resize(min_k));
                        }
                    }
                    script.push(match rng.gen_range(0..4) {
                        0..=2 => CounterAction::FetchAdd(1 + rng.gen_range(0..7u64)),
                        _ => CounterAction::Load,
                    });
                }
                script
            })
            .collect();
        CounterSchedule {
            mode,
            recycle,
            scripts,
        }
    }

    fn config(&self) -> SecConfig {
        let max_threads = self.scripts.len();
        let base = match self.mode {
            Mode::Fixed(k) => SecConfig::new(k, max_threads),
            Mode::Adaptive { min_k, max_k } => {
                SecConfig::adaptive_windowed(min_k, max_k, 32, max_threads)
            }
        };
        base.recycle(self.recycle)
    }
}

/// Runs a counter schedule, returning the history and the final value.
fn run_counter_schedule(s: &CounterSchedule) -> (Vec<TimedOp<CounterOp>>, u64) {
    let counter = SecCounter::with_config(s.config());
    let rec = Recorder::new();
    let events: Mutex<Vec<TimedOp<CounterOp>>> = Mutex::new(Vec::new());

    thread::scope(|scope| {
        for script in &s.scripts {
            let counter = &counter;
            let rec = &rec;
            let events = &events;
            scope.spawn(move || {
                let mut h = counter.register();
                let mut local = Vec::new();
                for action in script {
                    match *action {
                        CounterAction::Yield(n) => {
                            for _ in 0..n {
                                thread::yield_now();
                            }
                            continue;
                        }
                        CounterAction::Resize(k) => {
                            counter.set_active_aggregators(k);
                            continue;
                        }
                        _ => {}
                    }
                    let invoke = rec.now();
                    let op = match *action {
                        CounterAction::FetchAdd(n) => CounterOp::FetchAdd {
                            operand: n,
                            observed: h.fetch_add(n),
                        },
                        CounterAction::Load => CounterOp::Load(h.load()),
                        _ => unreachable!(),
                    };
                    let response = rec.now();
                    local.push(TimedOp {
                        op,
                        invoke,
                        response,
                    });
                }
                events.lock().unwrap().extend(local);
            });
        }
    });

    let active = counter.active_aggregators();
    let (min_k, max_k) = match s.mode {
        Mode::Fixed(k) => (k, k),
        Mode::Adaptive { min_k, max_k } => (min_k, max_k),
    };
    assert!(
        (min_k..=max_k).contains(&active),
        "final active {active} escaped [{min_k}, {max_k}]"
    );
    assert_eq!(
        counter.stats().report().eliminated,
        0,
        "homogeneous family never eliminates"
    );
    (events.into_inner().unwrap(), counter.load())
}

/// Linear-time exactness pass over a counter history: with all
/// operands ≥ 1 the observed pre-values are unique, and sorting the
/// fetch_adds by observed value must reproduce the *entire* prefix-sum
/// chain — `0, o₀, o₀+o₁, …` up to the final total. Every load must
/// have seen a value on that chain. This is the complete fetch_add
/// value contract (only real-time order is left to Wing–Gong).
fn check_counter_chain(history: &[TimedOp<CounterOp>], total: u64) -> Result<(), String> {
    let mut adds: Vec<(u64, u64)> = Vec::new(); // (observed, operand)
    let mut loads: Vec<u64> = Vec::new();
    for e in history {
        match e.op {
            CounterOp::FetchAdd { operand, observed } => adds.push((observed, operand)),
            CounterOp::Load(v) => loads.push(v),
        }
    }
    adds.sort_unstable();
    let mut expect = 0u64;
    let mut chain: std::collections::HashSet<u64> = std::collections::HashSet::new();
    chain.insert(0);
    for &(observed, operand) in &adds {
        if observed != expect {
            return Err(format!(
                "observed pre-value {observed} breaks the chain (expected {expect})"
            ));
        }
        expect += operand;
        chain.insert(expect);
    }
    if expect != total {
        return Err(format!(
            "chain sums to {expect} but the counter reads {total}"
        ));
    }
    for v in loads {
        if !chain.contains(&v) {
            return Err(format!(
                "load observed {v}, which is on no prefix of the chain"
            ));
        }
    }
    Ok(())
}

#[test]
fn small_counter_schedules_are_linearizable() {
    let mut saw_fixed = false;
    let mut saw_adaptive = false;
    let mut saw_recycle_on = false;
    let mut saw_recycle_off = false;
    let seeds = sweep_seeds(24);
    let full_sweep = coverage_asserts_apply(seeds.len());
    for seed in seeds {
        let schedule = CounterSchedule::derive(seed, true);
        match schedule.mode {
            Mode::Fixed(_) => saw_fixed = true,
            Mode::Adaptive { .. } => saw_adaptive = true,
        }
        if schedule.recycle.is_on() {
            saw_recycle_on = true;
        } else {
            saw_recycle_off = true;
        }
        let (history, total) = run_counter_schedule(&schedule);
        check_counter_chain(&history, total).unwrap_or_else(|e| {
            panic!(
                "seed {seed} ({:?}): counter chain violated: {e}\n{}",
                schedule.mode,
                replay_hint(seed)
            )
        });
        check_generic::<CounterSpec>(&history).unwrap_or_else(|e| {
            panic!(
                "seed {seed} ({:?}): counter history not linearizable: {e}\n{}\n{history:#?}",
                schedule.mode,
                replay_hint(seed)
            )
        });
    }
    if full_sweep {
        assert!(saw_fixed, "counter sweep never generated a Fixed schedule");
        assert!(
            saw_adaptive,
            "counter sweep never generated an Adaptive schedule"
        );
        assert!(
            saw_recycle_on && saw_recycle_off,
            "counter sweep must cover recycling both on and off"
        );
    }
}

#[test]
fn large_counter_schedules_keep_the_exact_chain() {
    for seed in sweep_seeds(6) {
        let schedule = CounterSchedule::derive(seed, false);
        let (history, total) = run_counter_schedule(&schedule);
        check_counter_chain(&history, total).unwrap_or_else(|e| {
            panic!(
                "seed {seed}: counter chain violated: {e}\n{}",
                replay_hint(seed)
            )
        });
    }
}

#[test]
fn identical_seeds_derive_identical_counter_schedules() {
    let a = CounterSchedule::derive(0xD15EA5E, true);
    let b = CounterSchedule::derive(0xD15EA5E, true);
    assert_eq!(a.mode, b.mode);
    assert_eq!(a.recycle, b.recycle);
    assert_eq!(format!("{:?}", a.scripts), format!("{:?}", b.scripts));
}

#[test]
fn forced_resize_points_reach_both_bounds() {
    // Every adaptive schedule carries the deterministic mid-script
    // toggle, so grow and shrink both happen even if the random resize
    // points all miss.
    for seed in sweep_seeds(16) {
        let schedule = Schedule::derive(seed, true);
        if let Mode::Adaptive { min_k, max_k } = schedule.mode {
            let resizes: Vec<usize> = schedule.scripts[0]
                .iter()
                .filter_map(|a| match a {
                    Action::Resize(k) => Some(*k),
                    _ => None,
                })
                .collect();
            assert!(
                resizes.contains(&max_k) && resizes.contains(&min_k),
                "seed {seed}: mid-script toggle missing: {resizes:?}"
            );
        }
    }
}

// ----------------------------------------------------------------------
// Map schedules: the seed-derived harness over `SecMap`, the keyed
// engine instantiation (DESIGN.md §13). Like the counter, every map op
// rides the Remove lane — but here the batch is *partitioned by shard
// of the key's bucket*, so the permuted interleavings exercise the
// bucket → shard routing and the re-route after every elastic resize.
// Values are globally unique (`tid << 40 | seq`), which upgrades the
// large-schedule pass to an exact conservation identity: every value
// ever inserted is displaced by a later insert, removed, or still in
// the map at the end — each exactly once.
// ----------------------------------------------------------------------

/// One step of a map thread's script.
#[derive(Debug, Clone, Copy)]
enum MapAction {
    /// `get(key)`.
    Get(u64),
    /// `insert(key, v)` where `v` is the thread's next unique value.
    Insert(u64),
    /// `remove(key)`.
    Remove(u64),
    /// Offer preemption `n` times before the next step.
    Yield(u8),
    /// Force the active aggregator count to `k` (no-op under Fixed).
    Resize(usize),
}

/// A seed-derived map schedule.
#[derive(Debug)]
struct MapSchedule {
    mode: Mode,
    recycle: RecyclePolicy,
    /// Keys are drawn from `0..key_space`; small schedules keep it
    /// tiny so operations actually contend on keys (and the Wing–Gong
    /// state space stays reachable).
    key_space: u64,
    scripts: Vec<Vec<MapAction>>,
}

impl MapSchedule {
    fn derive(seed: u64, small: bool) -> Self {
        // Distinct stream from the other families' schedules.
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x0000_AB1E_5EC0_06E7);
        let threads = if small {
            2 + rng.gen_range(0..2) as usize
        } else {
            4 + rng.gen_range(0..4) as usize
        };
        let ops_per_thread = if small {
            5 + rng.gen_range(0..4) as usize
        } else {
            150 + rng.gen_range(0..250) as usize
        };
        let key_space = if small {
            2 + rng.gen_range(0..3) as u64
        } else {
            16 + rng.gen_range(0..48) as u64
        };
        let mode = match rng.gen_range(0..4) {
            0 => Mode::Fixed(1 + rng.gen_range(0..3) as usize),
            _ => {
                let min_k = 1 + rng.gen_range(0..2) as usize;
                let max_k = min_k + 1 + rng.gen_range(0..3) as usize;
                Mode::Adaptive { min_k, max_k }
            }
        };
        let recycle = derive_recycle(&mut rng);
        let (min_k, max_k) = match mode {
            Mode::Fixed(k) => (k, k),
            Mode::Adaptive { min_k, max_k } => (min_k, max_k),
        };
        let scripts = (0..threads)
            .map(|t| {
                let mut script = Vec::new();
                for i in 0..ops_per_thread {
                    if rng.gen_range(0..3) == 0 {
                        script.push(MapAction::Yield(1 + rng.gen_range(0..3) as u8));
                    }
                    if max_k > min_k {
                        if rng.gen_range(0..8) == 0 {
                            let span = (max_k - min_k + 1) as u32;
                            script.push(MapAction::Resize(min_k + rng.gen_range(0..span) as usize));
                        }
                        if t == 0 && i == ops_per_thread / 2 {
                            script.push(MapAction::Resize(max_k));
                            script.push(MapAction::Resize(min_k));
                        }
                    }
                    let key = rng.gen_range(0..key_space);
                    script.push(match rng.gen_range(0..5) {
                        0 | 1 => MapAction::Insert(key),
                        2 | 3 => MapAction::Remove(key),
                        _ => MapAction::Get(key),
                    });
                }
                script
            })
            .collect();
        MapSchedule {
            mode,
            recycle,
            key_space,
            scripts,
        }
    }

    fn config(&self) -> SecConfig {
        let max_threads = self.scripts.len() + 1; // + the drain handle
        let base = match self.mode {
            Mode::Fixed(k) => SecConfig::new(k, max_threads),
            Mode::Adaptive { min_k, max_k } => {
                SecConfig::adaptive_windowed(min_k, max_k, 32, max_threads)
            }
        };
        base.recycle(self.recycle)
    }
}

/// A recorded map history (timed get/insert/remove operations).
type MapHistory = Vec<TimedOp<MapOp<u64, u64>>>;

/// Runs a map schedule, returning the history and the drained final
/// contents (key → value, removed one key-order pass at the end).
fn run_map_schedule(s: &MapSchedule) -> (MapHistory, Vec<(u64, u64)>) {
    let map: SecMap<u64, u64> = SecMap::with_config(s.config());
    let rec = Recorder::new();
    let events: Mutex<Vec<TimedOp<MapOp<u64, u64>>>> = Mutex::new(Vec::new());

    thread::scope(|scope| {
        for (t, script) in s.scripts.iter().enumerate() {
            let map = &map;
            let rec = &rec;
            let events = &events;
            scope.spawn(move || {
                let mut h = map.register();
                let mut local = Vec::new();
                let mut seq = 0u64;
                for action in script {
                    match *action {
                        MapAction::Yield(n) => {
                            for _ in 0..n {
                                thread::yield_now();
                            }
                            continue;
                        }
                        MapAction::Resize(k) => {
                            map.set_active_aggregators(k);
                            continue;
                        }
                        _ => {}
                    }
                    let invoke = rec.now();
                    let op = match *action {
                        MapAction::Get(key) => MapOp::Get {
                            key,
                            observed: h.get(&key),
                        },
                        MapAction::Insert(key) => {
                            let value = (t as u64) << 40 | seq;
                            seq += 1;
                            MapOp::Insert {
                                key,
                                value,
                                prev: h.insert(key, value),
                            }
                        }
                        MapAction::Remove(key) => MapOp::Remove {
                            key,
                            removed: h.remove(&key),
                        },
                        _ => unreachable!(),
                    };
                    let response = rec.now();
                    local.push(TimedOp {
                        op,
                        invoke,
                        response,
                    });
                }
                events.lock().unwrap().extend(local);
            });
        }
    });

    let active = map.active_aggregators();
    let (min_k, max_k) = match s.mode {
        Mode::Fixed(k) => (k, k),
        Mode::Adaptive { min_k, max_k } => (min_k, max_k),
    };
    assert!(
        (min_k..=max_k).contains(&active),
        "final active {active} escaped [{min_k}, {max_k}]"
    );
    assert_eq!(
        map.stats().report().eliminated,
        0,
        "keyed family never eliminates"
    );

    let mut drained = Vec::new();
    let mut h = map.register();
    for key in 0..s.key_space {
        if let Some(v) = h.remove(&key) {
            drained.push((key, v));
        }
    }
    assert!(map.is_empty(), "drain over the whole key space must empty");
    (events.into_inner().unwrap(), drained)
}

/// Linear-time exactness pass over a map history: with globally unique
/// values, every inserted value must leave the map by exactly one exit
/// (displaced by a later insert on its key, removed, or drained at the
/// end), every non-`None` observation must name a value some insert
/// put there, and the per-key sets must balance. Real-time order is
/// left to Wing–Gong on the small schedules.
fn check_map_conservation(
    history: &[TimedOp<MapOp<u64, u64>>],
    drained: &[(u64, u64)],
) -> Result<(), String> {
    use std::collections::HashSet;
    let mut inserted: HashSet<u64> = HashSet::new();
    let mut exited: HashSet<u64> = HashSet::new();
    let mut inserted_key: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    for e in history {
        if let MapOp::Insert { key, value, .. } = e.op {
            if !inserted.insert(value) {
                return Err(format!("value {value:#x} inserted twice"));
            }
            inserted_key.insert(value, key);
        }
    }
    let exit = |what: &str, key: u64, value: u64, exited: &mut HashSet<u64>| {
        if !inserted.contains(&value) {
            return Err(format!("{what} yielded {value:#x}, which no insert put in"));
        }
        if inserted_key[&value] != key {
            return Err(format!(
                "{what} on key {key} yielded {value:#x}, inserted under key {}",
                inserted_key[&value]
            ));
        }
        if !exited.insert(value) {
            return Err(format!("value {value:#x} left the map twice ({what})"));
        }
        Ok(())
    };
    for e in history {
        match e.op {
            MapOp::Insert {
                key, prev: Some(v), ..
            } => exit("insert displacement", key, v, &mut exited)?,
            MapOp::Remove {
                key,
                removed: Some(v),
            } => exit("remove", key, v, &mut exited)?,
            // Observations don't consume the value — just check
            // provenance.
            MapOp::Get {
                key,
                observed: Some(v),
            } if !inserted.contains(&v) || inserted_key[&v] != key => {
                return Err(format!("get({key}) observed phantom value {v:#x}"));
            }
            _ => {}
        }
    }
    for &(key, v) in drained {
        exit("drain", key, v, &mut exited)?;
    }
    if exited.len() != inserted.len() {
        return Err(format!(
            "{} values inserted but only {} accounted for",
            inserted.len(),
            exited.len()
        ));
    }
    Ok(())
}

#[test]
fn small_map_schedules_are_linearizable() {
    let mut saw_fixed = false;
    let mut saw_adaptive = false;
    let mut saw_recycle_on = false;
    let mut saw_recycle_off = false;
    let seeds = sweep_seeds(24);
    let full_sweep = coverage_asserts_apply(seeds.len());
    for seed in seeds {
        let schedule = MapSchedule::derive(seed, true);
        match schedule.mode {
            Mode::Fixed(_) => saw_fixed = true,
            Mode::Adaptive { .. } => saw_adaptive = true,
        }
        if schedule.recycle.is_on() {
            saw_recycle_on = true;
        } else {
            saw_recycle_off = true;
        }
        let (history, drained) = run_map_schedule(&schedule);
        check_map_conservation(&history, &drained).unwrap_or_else(|e| {
            panic!(
                "seed {seed} ({:?}): map conservation violated: {e}\n{}",
                schedule.mode,
                replay_hint(seed)
            )
        });
        check_generic::<MapSpec<u64, u64>>(&history).unwrap_or_else(|e| {
            panic!(
                "seed {seed} ({:?}): map history not linearizable: {e}\n{}\n{history:#?}",
                schedule.mode,
                replay_hint(seed)
            )
        });
    }
    if full_sweep {
        assert!(saw_fixed, "map sweep never generated a Fixed schedule");
        assert!(
            saw_adaptive,
            "map sweep never generated an Adaptive schedule"
        );
        assert!(
            saw_recycle_on && saw_recycle_off,
            "map sweep must cover recycling both on and off"
        );
    }
}

#[test]
fn large_map_schedules_conserve_every_value() {
    for seed in sweep_seeds(6) {
        let schedule = MapSchedule::derive(seed, false);
        let (history, drained) = run_map_schedule(&schedule);
        check_map_conservation(&history, &drained).unwrap_or_else(|e| {
            panic!(
                "seed {seed}: map conservation violated: {e}\n{}",
                replay_hint(seed)
            )
        });
    }
}

#[test]
fn identical_seeds_derive_identical_map_schedules() {
    let a = MapSchedule::derive(0xD15EA5E, true);
    let b = MapSchedule::derive(0xD15EA5E, true);
    assert_eq!(a.mode, b.mode);
    assert_eq!(a.recycle, b.recycle);
    assert_eq!(a.key_space, b.key_space);
    assert_eq!(format!("{:?}", a.scripts), format!("{:?}", b.scripts));
}
