//! Integration: record small concurrent histories on every stack and
//! verify them with the Wing–Gong checker — the empirical counterpart
//! of the paper's Appendix B linearizability proof.

mod common;

use sec_repro::linearize::{check_conservation, check_history, Event, Op, Recorder};
use sec_repro::{ConcurrentStack, StackHandle};
use std::sync::Mutex;
use std::thread;

/// Records `rounds` small histories of `threads` threads × `ops` mixed
/// operations each and checks each one. Values are globally unique per
/// history so pops identify their pushes.
fn record_and_check<S: ConcurrentStack<u64>>(
    stack_factory: impl Fn() -> S,
    name: &str,
    threads: usize,
    ops: usize,
    rounds: usize,
) {
    for round in 0..rounds {
        let stack = stack_factory();
        let rec = Recorder::new();
        let events: Mutex<Vec<Event<u64>>> = Mutex::new(Vec::new());

        thread::scope(|scope| {
            for t in 0..threads {
                let stack = &stack;
                let rec = &rec;
                let events = &events;
                scope.spawn(move || {
                    let mut h = stack.register();
                    let mut local = Vec::with_capacity(ops);
                    for i in 0..ops {
                        // Deterministic per-thread mix, varied by round.
                        let choice = (t + i + round) % 5;
                        let invoke = rec.now();
                        let op = match choice {
                            0 | 1 => {
                                let v = (round * 1_000_000 + t * 1_000 + i) as u64;
                                h.push(v);
                                Op::Push(v)
                            }
                            2 | 3 => Op::Pop(h.pop()),
                            _ => Op::Peek(h.peek()),
                        };
                        let response = rec.now();
                        local.push(Event {
                            thread: t,
                            op,
                            invoke,
                            response,
                        });
                    }
                    events.lock().unwrap().extend(local);
                });
            }
        });

        let history = events.into_inner().unwrap();
        check_conservation(&history).unwrap_or_else(|e| panic!("[{name}] round {round}: {e}"));
        check_history(&history).unwrap_or_else(|e| {
            panic!("[{name}] round {round}: history not linearizable: {e}\n{history:#?}")
        });
    }
}

// Per-algorithm tests (small histories: the checker is exponential).

#[test]
fn sec_histories_are_linearizable() {
    record_and_check(
        || sec_repro::SecStack::with_config(sec_repro::SecConfig::new(2, 3)),
        "SEC",
        3,
        8,
        12,
    );
}

#[test]
fn sec_single_aggregator_histories_are_linearizable() {
    record_and_check(
        || sec_repro::SecStack::with_config(sec_repro::SecConfig::new(1, 3)),
        "SEC_Agg1",
        3,
        8,
        12,
    );
}

#[test]
fn sec_adaptive_histories_with_forced_resizes_are_linearizable() {
    // Elastic sharding mid-history: a controller forces grow/shrink
    // transitions while 3 workers record operations, so batches from
    // before, during and after each re-mapping appear in every round.
    use sec_repro::{SecConfig, SecStack};
    use std::sync::atomic::{AtomicBool, Ordering};

    const THREADS: usize = 3;
    let mut total_resizes = 0u64;
    for round in 0..12 {
        let stack: SecStack<u64> =
            SecStack::with_config(SecConfig::adaptive_windowed(1, 3, 16, THREADS));
        let rec = Recorder::new();
        let events: Mutex<Vec<Event<u64>>> = Mutex::new(Vec::new());
        let done = AtomicBool::new(false);

        thread::scope(|scope| {
            for t in 0..THREADS {
                let stack = &stack;
                let rec = &rec;
                let events = &events;
                scope.spawn(move || {
                    let mut h = stack.register();
                    let mut local = Vec::with_capacity(8);
                    for i in 0..8usize {
                        let choice = (t + i + round) % 5;
                        let invoke = rec.now();
                        let op = match choice {
                            0 | 1 => {
                                let v = (round * 1_000_000 + t * 1_000 + i) as u64;
                                h.push(v);
                                Op::Push(v)
                            }
                            2 | 3 => Op::Pop(h.pop()),
                            _ => Op::Peek(h.peek()),
                        };
                        let response = rec.now();
                        local.push(Event {
                            thread: t,
                            op,
                            invoke,
                            response,
                        });
                    }
                    events.lock().unwrap().extend(local);
                });
            }
            // Controller: unregistered, hammers resize transitions
            // until the workers finish.
            let stack = &stack;
            let done = &done;
            scope.spawn(move || {
                let mut k = 1usize;
                while !done.load(Ordering::Acquire) {
                    stack.set_active_aggregators(k);
                    k = k % 3 + 1; // 1 → 2 → 3 → 1 …
                    thread::yield_now();
                }
            });
            // The worker spawns above run to completion when the scope
            // joins; flip the controller off once events are all in.
            while events.lock().unwrap().len() < THREADS * 8 {
                thread::yield_now();
            }
            done.store(true, Ordering::Release);
        });

        let history = events.into_inner().unwrap();
        check_conservation(&history)
            .unwrap_or_else(|e| panic!("[SEC_Adaptive] round {round}: {e}"));
        check_history(&history).unwrap_or_else(|e| {
            panic!("[SEC_Adaptive] round {round}: history not linearizable: {e}\n{history:#?}")
        });
        let r = stack.stats().report();
        total_resizes += r.resizes();
        let active = stack.active_aggregators();
        assert!((1..=3).contains(&active), "active {active} out of [1, 3]");
    }
    assert!(
        total_resizes > 0,
        "the controller must actually force grow/shrink transitions"
    );
}

#[test]
fn treiber_histories_are_linearizable() {
    record_and_check(
        || sec_repro::baselines::TreiberStack::new(3),
        "TRB",
        3,
        8,
        12,
    );
}

#[test]
fn eb_histories_are_linearizable() {
    record_and_check(|| sec_repro::baselines::EbStack::new(3), "EB", 3, 8, 12);
}

#[test]
fn fc_histories_are_linearizable() {
    record_and_check(|| sec_repro::baselines::FcStack::new(3), "FC", 3, 8, 12);
}

#[test]
fn cc_histories_are_linearizable() {
    record_and_check(|| sec_repro::baselines::CcStack::new(3), "CC", 3, 8, 12);
}

#[test]
fn tsi_histories_are_linearizable() {
    record_and_check(|| sec_repro::baselines::TsiStack::new(3), "TSI", 3, 8, 12);
}

#[test]
fn large_histories_pass_conservation_for_all_stacks() {
    // The DFS checker can't handle big histories; the linear-time
    // conservation pass can. 4 threads × 300 ops per stack.
    with_all_stacks!(4, |stack, name| {
        let rec = Recorder::new();
        let events: Mutex<Vec<Event<u64>>> = Mutex::new(Vec::new());
        thread::scope(|scope| {
            for t in 0..4usize {
                let stack = &stack;
                let rec = &rec;
                let events = &events;
                scope.spawn(move || {
                    let mut h = stack.register();
                    let mut local = Vec::new();
                    for i in 0..300usize {
                        let invoke = rec.now();
                        let op = if (t + i) % 2 == 0 {
                            let v = (t * 1_000_000 + i) as u64;
                            h.push(v);
                            Op::Push(v)
                        } else {
                            Op::Pop(h.pop())
                        };
                        let response = rec.now();
                        local.push(Event {
                            thread: t,
                            op,
                            invoke,
                            response,
                        });
                    }
                    events.lock().unwrap().extend(local);
                });
            }
        });
        let history = events.into_inner().unwrap();
        check_conservation(&history).unwrap_or_else(|e| panic!("[{name}] {e}"));
    });
}
