//! Integration: deterministic trace replay across the full lineup.
//!
//! One seeded trace, all eight stacks: the op counts are fixed by the
//! trace, so the accounting identities must agree *exactly* across
//! algorithms — any divergence is a lost or invented operation.

mod common;

use sec_repro::workload::{replay, Mix, Trace};

#[test]
fn one_trace_same_accounting_on_every_stack() {
    let threads = 3;
    let trace = Trace::generate(threads, 400, Mix::UPDATE_100, 0xBEEF);
    let (pushes, pops, peeks) = trace.op_counts();
    assert_eq!(peeks, 0, "UPDATE_100 has no peeks");

    with_all_stacks!(threads, |stack, name| {
        let r = replay(&stack, &trace);
        assert_eq!(r.ops as usize, trace.total_ops(), "[{name}] op count");
        assert_eq!(
            (r.pop_hits + r.pop_misses) as usize,
            pops,
            "[{name}] every pop must be either a hit or a miss"
        );
        assert!(
            r.pop_hits as usize <= pushes,
            "[{name}] cannot pop more values than were pushed"
        );
    });
}

#[test]
fn flood_drain_balance_is_zero_on_every_stack() {
    // Each lane pushes then pops the same count; pops may cross lanes
    // but the grand total of popped value must equal the pushed value
    // (balance 0) and nothing may be left behind unclaimed by misses.
    let threads = 3;
    let trace = Trace::flood_drain(threads, 50);
    with_all_stacks!(threads, |stack, name| {
        let r = replay(&stack, &trace);
        assert_eq!(
            r.pop_hits + r.pop_misses,
            (threads * 50) as u64,
            "[{name}] pop accounting"
        );
        // misses + hits = pops; every miss leaves one value in the
        // stack, so balance equals the sum of the leftovers.
        if r.pop_misses == 0 {
            assert_eq!(r.balance, 0, "[{name}] full drain must balance");
        } else {
            // Leftover values are non-negative (value 0 is a valid
            // leftover, so equality is possible).
            assert!(r.balance >= 0, "[{name}] leftovers cannot be negative");
        }
    });
}

#[test]
fn seeded_traces_reproduce_across_runs() {
    // The reproducibility contract the module documents: same seed,
    // same trace, same per-lane program order — twice.
    let a = Trace::generate(4, 1_000, Mix::UPDATE_50, 7);
    let b = Trace::generate(4, 1_000, Mix::UPDATE_50, 7);
    assert_eq!(a, b);
    for t in 0..4 {
        assert_eq!(a.lane(t), b.lane(t));
    }
}
