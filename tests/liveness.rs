//! Integration: liveness boundaries of the *blocking* SEC algorithm
//! (paper Property 5.1 and its flip side).
//!
//! SEC is blocking — announced operations wait for their batch's
//! freezer and combiner. These tests pin down what must **not** block:
//!
//! * a lone thread (its own freezer and combiner) completes unaided;
//! * registered-but-idle threads stall nobody (waiting is only ever on
//!   threads that have *announced* into the same batch);
//! * `pop` on an empty stack returns `None` rather than waiting for a
//!   push (elimination is an opportunity, not an obligation);
//! * aggregators are independent: activity confined to one aggregator
//!   needs nothing from the other's threads;
//! * the whole lineup completes fixed work when oversubscribed well
//!   past the host's hardware threads (the spin loops must degrade to
//!   yields — DESIGN.md §2 "blocking loops").

mod common;

use sec_repro::{SecConfig, SecStack, StackHandle};
use std::sync::atomic::{AtomicBool, Ordering};
use std::thread;
use std::time::{Duration, Instant};

/// Runs `f` on a watchdog: panics if it takes longer than `secs`.
/// Coarse (the test process keeps running), but converts a wedge into
/// a clean failure message instead of a CI timeout.
fn within_secs<F: FnOnce() + Send>(secs: u64, what: &str, f: F) {
    let done = AtomicBool::new(false);
    thread::scope(|scope| {
        let done = &done;
        scope.spawn(move || {
            f();
            done.store(true, Ordering::Release);
        });
        let deadline = Instant::now() + Duration::from_secs(secs);
        while !done.load(Ordering::Acquire) {
            assert!(Instant::now() < deadline, "{what}: wedged (> {secs}s)");
            thread::sleep(Duration::from_millis(10));
        }
    });
}

#[test]
fn lone_thread_completes_unaided() {
    // One thread in a stack sized for many: it must become freezer and
    // combiner of every batch it opens, with nobody to eliminate with.
    within_secs(30, "lone thread", || {
        let stack: SecStack<u64> = SecStack::with_config(SecConfig::new(2, 8));
        let mut h = stack.register();
        for i in 0..20_000 {
            h.push(i);
            assert_eq!(h.pop(), Some(i));
        }
    });
}

#[test]
fn pop_on_empty_returns_none_immediately() {
    within_secs(10, "empty pop", || {
        let stack: SecStack<u64> = SecStack::with_config(SecConfig::new(2, 4));
        let mut h = stack.register();
        for _ in 0..1_000 {
            assert_eq!(h.pop(), None);
        }
    });
}

#[test]
fn registered_but_idle_threads_stall_nobody() {
    // Three threads register (occupying reclamation slots and, for two
    // of them, aggregator positions) and then go to sleep without ever
    // announcing an operation. The fourth must finish its work — if any
    // wait loop keyed on *registered* rather than *announced* threads,
    // this would wedge.
    within_secs(30, "idle threads", || {
        let stack: SecStack<u64> = SecStack::with_config(SecConfig::new(2, 4));
        let stop = AtomicBool::new(false);
        thread::scope(|scope| {
            for _ in 0..3 {
                let stack = &stack;
                let stop = &stop;
                scope.spawn(move || {
                    let _h = stack.register(); // register, never operate
                    while !stop.load(Ordering::Relaxed) {
                        thread::sleep(Duration::from_millis(5));
                    }
                });
            }
            let stack = &stack;
            let stop = &stop;
            scope.spawn(move || {
                let mut h = stack.register();
                for i in 0..10_000u64 {
                    h.push(i);
                    assert_eq!(h.pop(), Some(i));
                }
                stop.store(true, Ordering::Relaxed);
            });
        });
    });
}

#[test]
fn aggregators_are_independent() {
    // All activity in one aggregator; the other aggregator's threads
    // never show up. With K = 2 and 4 slots, tids {0,1} share one
    // aggregator under block sharding — run exactly those two and
    // leave the other aggregator permanently empty.
    within_secs(30, "single-aggregator activity", || {
        let stack: SecStack<u64> = SecStack::with_config(SecConfig::new(2, 4));
        thread::scope(|scope| {
            for t in 0..2u64 {
                let stack = &stack;
                scope.spawn(move || {
                    let mut h = stack.register();
                    for i in 0..5_000 {
                        h.push(t * 1_000_000 + i);
                        let _ = h.pop();
                    }
                });
            }
        });
    });
}

#[test]
fn all_stacks_complete_fixed_work_oversubscribed() {
    // 4× the host's hardware threads, every implementation. The SEC
    // waits (freeze, isBatchApplied, elimination slot) and the FC/CC
    // combiner waits must all degrade to yields for this to finish.
    let threads = 4 * std::thread::available_parallelism().map_or(1, |n| n.get());
    with_all_stacks!(threads, |stack, name| {
        within_secs(60, name, || {
            thread::scope(|scope| {
                for t in 0..threads {
                    let stack = &stack;
                    scope.spawn(move || {
                        let mut h = stack.register();
                        for i in 0..300u64 {
                            h.push((t as u64) << 32 | i);
                            if i % 2 == 0 {
                                let _ = h.pop();
                            }
                        }
                    });
                }
            });
        });
    });
}

#[test]
fn extensions_share_the_liveness_properties() {
    use sec_repro::ext::{End, SecDeque, SecPool, SecQueue};
    within_secs(30, "pool/deque/queue liveness", || {
        let pool: SecPool<u64> = SecPool::new(2, 2);
        let mut p = pool.register();
        assert_eq!(p.get(), None);
        p.put(1);
        assert_eq!(p.get(), Some(1));

        let deque: SecDeque<u64> = SecDeque::new(2);
        let mut d = deque.register();
        assert_eq!(d.pop_front(), None);
        assert_eq!(d.pop_back(), None);
        d.push_front(1);
        d.push_back(2);
        assert_eq!(d.pop_back(), Some(2));
        assert_eq!(d.pop_front(), Some(1));
        let _ = End::Front; // the enum is part of the public surface

        // Dequeue on empty must return None promptly even though the
        // combiner holds a rendezvous window open for elimination —
        // the window is bounded (DESIGN.md §9).
        let queue: SecQueue<u64> = SecQueue::new(2);
        let mut q = queue.register();
        for _ in 0..500 {
            assert_eq!(q.dequeue(), None);
        }
        q.enqueue(1);
        assert_eq!(q.dequeue(), Some(1));
    });
}

#[test]
fn lone_thread_counter_completes_unaided() {
    use sec_repro::ext::SecCounter;
    // The homogeneous engine instantiation: one thread must become
    // freezer and combiner of every batch it opens, with the add lane
    // permanently empty — the pure-engine liveness path.
    within_secs(30, "lone counter thread", || {
        let counter = SecCounter::new(8);
        let mut h = counter.register();
        for i in 0..20_000 {
            assert_eq!(h.increment(), i);
        }
        assert_eq!(counter.load(), 20_000);
    });
}

#[test]
fn counter_completes_fixed_work_oversubscribed() {
    // 4× the host's hardware threads through one counter: the engine's
    // freeze wait and publish wait must degrade to yields/parking for
    // this to finish, with no family-specific code to help.
    let threads = 4 * std::thread::available_parallelism().map_or(1, |n| n.get());
    let counter = sec_repro::ext::SecCounter::with_config(
        SecConfig::new(2, threads).wait_policy(sec_repro::WaitPolicy::spin_then_park()),
    );
    within_secs(60, "oversubscribed counter", || {
        thread::scope(|scope| {
            for _ in 0..threads {
                let counter = &counter;
                scope.spawn(move || {
                    let mut h = counter.register();
                    for _ in 0..300 {
                        h.increment();
                    }
                });
            }
        });
    });
    assert_eq!(counter.load(), (threads * 300) as u64);
}

#[test]
fn lone_thread_queue_completes_unaided() {
    use sec_repro::ext::SecQueue;
    // One thread is freezer and combiner of every batch it opens, on
    // both ends; nobody exists to eliminate or combine with.
    within_secs(30, "lone queue thread", || {
        let queue: SecQueue<u64> = SecQueue::new(8);
        let mut h = queue.register();
        for i in 0..20_000 {
            h.enqueue(i);
            assert_eq!(h.dequeue(), Some(i));
        }
    });
}

#[test]
fn lone_thread_map_completes_unaided() {
    use sec_repro::ext::SecMap;
    // The keyed instantiation: one thread is freezer and combiner of
    // every batch it opens, across whatever shard its keys route to.
    within_secs(30, "lone map thread", || {
        let map: SecMap<u64, u64> = SecMap::new(8);
        let mut h = map.register();
        for i in 0..20_000u64 {
            let key = i % 512;
            assert_eq!(h.get(&key), None);
            assert_eq!(h.insert(key, i), None);
            assert_eq!(h.remove(&key), Some(i));
        }
        assert!(map.is_empty());
    });
}

#[test]
fn map_completes_fixed_work_oversubscribed() {
    // 4× the host's hardware threads through one map: the freeze wait
    // and publish wait must degrade to yields/parking, and the final
    // contents must still balance.
    let threads = 4 * std::thread::available_parallelism().map_or(1, |n| n.get());
    let map = sec_repro::ext::SecMap::with_config(
        SecConfig::new(2, threads + 1).wait_policy(sec_repro::WaitPolicy::spin_then_park()),
    );
    within_secs(60, "oversubscribed map", || {
        thread::scope(|scope| {
            for t in 0..threads {
                let map = &map;
                scope.spawn(move || {
                    let mut h = map.register();
                    for i in 0..300u64 {
                        let key = (t as u64) << 16 | i; // thread-private keys
                        h.insert(key, i);
                        if i % 2 == 0 {
                            assert_eq!(h.remove(&key), Some(i));
                        }
                    }
                });
            }
        });
    });
    assert_eq!(map.len(), threads * 150, "each thread leaves 150 keys");
}
