//! Integration: the `SecQueue` tentpole is linearizable *as a FIFO
//! queue* — checked with the generic Wing–Gong checker against the
//! pre-existing `QueueSpec` (which shipped in `crates/linearize`
//! explicitly "for queue adaptations of the SEC mechanisms") — and
//! conserves values with liveness at 2× the host's hardware threads.
//!
//! Histories are kept at ≤ 30 events (the checker is exponential); the
//! seeded rounds sweep ≥ 8 seeds so distinct interleavings, batch cuts
//! and empty-rendezvous windows are all exercised. The MS and locked
//! baselines run through the same recorder, so a spec bug would show up
//! as all three failing rather than as a SecQueue regression.

use sec_linearize::spec::queue::{QueueOp, QueueSpec};
use sec_linearize::spec::{check_generic, TimedOp};
use sec_linearize::Recorder;
use sec_repro::baselines::{LockedQueue, MsQueue};
use sec_repro::ext::SecQueue;
use sec_repro::{ConcurrentQueue, QueueHandle};
use std::collections::HashSet;
use std::sync::Mutex;
use std::thread;
use std::time::{Duration, Instant};

/// Records one small concurrent history (`threads × ops` ≤ 30 events)
/// against `queue`, with a per-seed deterministic mix.
fn record_round<Q: ConcurrentQueue<u64>>(
    queue: &Q,
    threads: usize,
    ops: usize,
    seed: u64,
) -> Vec<TimedOp<QueueOp<u64>>> {
    assert!(threads * ops <= 30, "keep histories inside the checker");
    let rec = Recorder::new();
    let events: Mutex<Vec<TimedOp<QueueOp<u64>>>> = Mutex::new(Vec::new());

    thread::scope(|scope| {
        for t in 0..threads {
            let queue = &queue;
            let rec = &rec;
            let events = &events;
            scope.spawn(move || {
                let mut h = queue.register();
                let mut local = Vec::with_capacity(ops);
                for i in 0..ops {
                    // Seed-permuted mix, biased toward contention on
                    // the dequeue side (where FIFO bugs live).
                    let choice = (t * 7 + i * 3 + seed as usize) % 5;
                    let invoke = rec.now();
                    let op = if choice < 2 {
                        let v = (seed * 1_000_000 + (t * 1_000 + i) as u64) % u64::MAX;
                        h.enqueue(v);
                        QueueOp::Enqueue(v)
                    } else {
                        QueueOp::Dequeue(h.dequeue())
                    };
                    let response = rec.now();
                    local.push(TimedOp {
                        op,
                        invoke,
                        response,
                    });
                }
                events.lock().unwrap().extend(local);
            });
        }
    });
    events.into_inner().unwrap()
}

/// Seeds for the history sweep (≥ 8, per the subsystem's acceptance
/// bar; `SCHEDULE_SEEDS` widens it in the nightly job just like the
/// schedule harness).
fn seeds() -> Vec<u64> {
    let n = std::env::var("SCHEDULE_SEEDS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map(|n| n.clamp(8, 512))
        .unwrap_or(12);
    (0..n).map(|i| 0x0FEE_D5EC_u64.wrapping_add(i)).collect()
}

#[test]
fn sec_queue_histories_are_linearizable() {
    for seed in seeds() {
        let queue: SecQueue<u64> = SecQueue::new(3);
        let history = record_round(&queue, 3, 8, seed);
        check_generic::<QueueSpec<u64>>(&history).unwrap_or_else(|e| {
            panic!("[SEC-Q] seed {seed}: history not linearizable: {e}\n{history:#?}")
        });
    }
}

#[test]
fn sec_queue_histories_without_rendezvous_are_linearizable() {
    // The empty-only elimination window off: the EMPTY fast path must
    // be just as linearizable as the rendezvous path.
    for seed in seeds() {
        let queue: SecQueue<u64> = SecQueue::new(3).rendezvous_spins(0);
        let history = record_round(&queue, 3, 8, seed);
        check_generic::<QueueSpec<u64>>(&history).unwrap_or_else(|e| {
            panic!("[SEC-Q/no-rdv] seed {seed}: history not linearizable: {e}\n{history:#?}")
        });
    }
}

#[test]
fn sec_queue_two_thread_deep_histories_are_linearizable() {
    // Fewer threads, more ops per thread: longer FIFO prefixes inside
    // one history (2 × 15 = 30 events, the checker's comfort bound).
    for seed in seeds() {
        let queue: SecQueue<u64> = SecQueue::new(2);
        let history = record_round(&queue, 2, 15, seed);
        check_generic::<QueueSpec<u64>>(&history).unwrap_or_else(|e| {
            panic!("[SEC-Q/2x15] seed {seed}: history not linearizable: {e}\n{history:#?}")
        });
    }
}

#[test]
fn ms_queue_histories_are_linearizable() {
    for seed in seeds().into_iter().take(8) {
        let queue: MsQueue<u64> = MsQueue::new(3);
        let history = record_round(&queue, 3, 8, seed);
        check_generic::<QueueSpec<u64>>(&history).unwrap_or_else(|e| {
            panic!("[MS] seed {seed}: history not linearizable: {e}\n{history:#?}")
        });
    }
}

#[test]
fn locked_queue_histories_are_linearizable() {
    for seed in seeds().into_iter().take(8) {
        let queue: LockedQueue<u64> = LockedQueue::new(3);
        let history = record_round(&queue, 3, 8, seed);
        check_generic::<QueueSpec<u64>>(&history).unwrap_or_else(|e| {
            panic!("[LCK-Q] seed {seed}: history not linearizable: {e}\n{history:#?}")
        });
    }
}

/// Runs `f` on a watchdog: panics if it takes longer than `secs`
/// (mirrors `tests/liveness.rs`).
fn within_secs<F: FnOnce() + Send>(secs: u64, what: &str, f: F) {
    use std::sync::atomic::{AtomicBool, Ordering};
    let done = AtomicBool::new(false);
    thread::scope(|scope| {
        let done = &done;
        scope.spawn(move || {
            f();
            done.store(true, Ordering::Release);
        });
        let deadline = Instant::now() + Duration::from_secs(secs);
        while !done.load(Ordering::Acquire) {
            assert!(Instant::now() < deadline, "{what}: wedged (> {secs}s)");
            thread::sleep(Duration::from_millis(10));
        }
    });
}

#[test]
fn queue_conservation_and_liveness_at_2x_hardware_threads() {
    // The acceptance scenario: 2× the host's hardware threads hammer
    // the queue; no value may be invented, lost or dequeued twice, and
    // the run must finish (every blocking wait must degrade to yields).
    let threads = 2 * thread::available_parallelism()
        .map_or(1, |n| n.get())
        .max(2);
    const PER: usize = 600;
    for name in ["SEC-Q", "SEC-Q/no-rdv", "MS", "LCK-Q"] {
        within_secs(90, name, || match name {
            "SEC-Q" => conserve(&SecQueue::<u64>::new(threads + 1), threads, PER, name),
            "SEC-Q/no-rdv" => conserve(
                &SecQueue::<u64>::new(threads + 1).rendezvous_spins(0),
                threads,
                PER,
                name,
            ),
            "MS" => conserve(&MsQueue::<u64>::new(threads + 1), threads, PER, name),
            _ => conserve(&LockedQueue::<u64>::new(threads + 1), threads, PER, name),
        });
    }
}

/// Generic conservation scenario shared by the liveness test above and
/// the seeded sweep below.
fn conserve<Q: ConcurrentQueue<u64>>(queue: &Q, threads: usize, per: usize, name: &str) {
    let got: Vec<Vec<u64>> = thread::scope(|scope| {
        (0..threads)
            .map(|t| {
                let queue = &queue;
                scope.spawn(move || {
                    let mut h = queue.register();
                    let mut got = Vec::new();
                    for i in 0..per {
                        h.enqueue((t * per + i) as u64);
                        if i % 3 != 0 {
                            if let Some(v) = h.dequeue() {
                                got.push(v);
                            }
                        }
                    }
                    got
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|j| j.join().unwrap())
            .collect()
    });
    let mut seen: HashSet<u64> = HashSet::new();
    for v in got.into_iter().flatten() {
        assert!(seen.insert(v), "[{name}] value {v} dequeued twice");
        assert!(
            (v as usize) < threads * per,
            "[{name}] value {v} was never enqueued"
        );
    }
    let mut h = queue.register();
    while let Some(v) = h.dequeue() {
        assert!(seen.insert(v), "[{name}] value {v} dequeued twice in drain");
    }
    assert_eq!(seen.len(), threads * per, "[{name}] values lost");
    assert_eq!(h.dequeue(), None, "[{name}] queue must end empty");
}

#[test]
fn sec_queue_global_fifo_with_single_consumer() {
    // With one consumer, FIFO is directly observable: each producer's
    // values must arrive in its own enqueue order. This is the
    // black-box property the Wing–Gong rounds verify on small
    // histories, here at scale.
    const PRODUCERS: usize = 3;
    const PER: u64 = 4_000;
    let q: SecQueue<u64> = SecQueue::new(PRODUCERS + 1);
    let got: Vec<u64> = thread::scope(|scope| {
        for p in 0..PRODUCERS {
            let q = &q;
            scope.spawn(move || {
                let mut h = q.register();
                for i in 0..PER {
                    h.enqueue(((p as u64) << 32) | i);
                }
            });
        }
        let q = &q;
        scope
            .spawn(move || {
                let mut h = q.register();
                let mut got = Vec::new();
                while got.len() < (PRODUCERS as u64 * PER) as usize {
                    if let Some(v) = h.dequeue() {
                        got.push(v);
                    }
                }
                got
            })
            .join()
            .unwrap()
    });
    let mut last = [None::<u64>; PRODUCERS];
    for v in got {
        let (p, i) = ((v >> 32) as usize, v & 0xFFFF_FFFF);
        if let Some(prev) = last[p] {
            assert!(i > prev, "producer {p}: {i} arrived after {prev}");
        }
        last[p] = Some(i);
    }
}
