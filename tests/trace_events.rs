//! Integration: sec-trace event semantics (DESIGN.md §14).
//!
//! Only meaningful when the engine's hooks are compiled in, so the
//! whole binary is gated on the `trace` feature:
//!
//! ```text
//! cargo test --features trace --test trace_events
//! ```
//!
//! A single-threaded run is a seeded schedule: every op announces with
//! sequence 0, elects itself freezer, freezes a degree-1 batch,
//! combines it and publishes — so the event stream's *order* is fully
//! determined and can be asserted exactly, not just statistically.

#![cfg(feature = "trace")]

use sec_repro::trace::{chrome_trace_json, TraceEvent, TraceEventKind};
use sec_repro::{SecConfig, SecStack, TraceConfig};

/// A traced single-threaded stack run: `ops` push/pop pairs, sampling
/// every op, then the drained (timestamp-sorted) event stream.
fn traced_run(ops: u64) -> (SecStack<u64>, Vec<TraceEvent>) {
    let stack: SecStack<u64> = SecStack::with_config(
        SecConfig::new(2, 1)
            .freezer_yields(0)
            .trace(TraceConfig::on().sample_shift(0).ring_capacity(8192)),
    );
    {
        let mut h = stack.register();
        for i in 0..ops {
            h.push(i);
            assert_eq!(h.pop(), Some(i));
        }
    }
    let events = stack.tracer().expect("feature builds a recorder").events();
    (stack, events)
}

#[test]
fn single_threaded_ops_emit_the_protocol_lifecycle_in_order() {
    let (_stack, events) = traced_run(16);
    assert!(!events.is_empty(), "sampled run must record events");

    // Single-threaded, the per-op lifecycle is exact: announce (seq 0),
    // self-election, degree-1 freeze, combine bracket, publish. The
    // ring holds far more than 16 ops' worth, so nothing was dropped
    // and the *first* op's prefix must open the stream.
    let kinds: Vec<&TraceEventKind> = events.iter().map(|e| &e.kind).collect();
    assert!(
        matches!(kinds[0], TraceEventKind::Announce { seq: 0, .. }),
        "stream must open with the first op's announce, got {:?}",
        kinds[0]
    );
    assert!(
        matches!(kinds[1], TraceEventKind::FreezerElected),
        "seq 0 must elect itself freezer, got {:?}",
        kinds[1]
    );
    assert!(
        matches!(kinds[2], TraceEventKind::BatchFrozen { adds, removes } if adds + removes == 1),
        "single-threaded batches have degree 1, got {:?}",
        kinds[2]
    );

    // Combine brackets pair up and never nest (one combiner at a time
    // per aggregator; single-threaded, globally).
    let mut open = 0i64;
    let mut publishes = 0u64;
    for k in &kinds {
        match k {
            TraceEventKind::CombineStart { .. } => {
                open += 1;
                assert_eq!(open, 1, "combine brackets must not nest");
            }
            TraceEventKind::CombineEnd { .. } => {
                open -= 1;
                assert_eq!(open, 0, "combine end without start");
            }
            TraceEventKind::Publish { .. } => publishes += 1,
            _ => {}
        }
    }
    assert_eq!(open, 0, "every combine bracket must close");
    assert_eq!(publishes, 32, "every op (16 pairs) publishes its batch");

    // events() returns timestamp order.
    for w in events.windows(2) {
        assert!(w[0].ts_ns <= w[1].ts_ns, "events must be time-sorted");
    }
    // No parks in a single-threaded run: nobody to wait for.
    assert!(
        !kinds
            .iter()
            .any(|k| matches!(k, TraceEventKind::Park | TraceEventKind::Unpark)),
        "single-threaded runs never block"
    );
}

#[test]
fn phase_histograms_cover_every_sampled_op() {
    let (stack, _events) = traced_run(64);
    let t = stack.tracer().unwrap();
    // 128 ops, all sampled: each waits announce→freeze (a degree-1
    // wait, but still timed), combines, and completes.
    assert_eq!(t.op_latency().count(), 128);
    assert_eq!(t.announce_to_freeze().count(), 128);
    assert_eq!(t.combine_duration().count(), 128);
    assert_eq!(t.batch_residency().count(), 128);
    // Residency (freeze→publish) is contained in op latency.
    assert!(t.batch_residency().max() <= t.op_latency().max());
}

#[test]
fn resize_steps_land_on_the_control_ring() {
    // Adaptive [1, 4], starting at 4: a fixed policy would clamp every
    // explicit resize back to its K and record nothing.
    let stack: SecStack<u64> =
        SecStack::with_config(SecConfig::adaptive(1, 4, 1).trace(TraceConfig::on()));
    // Adaptive structures start at the known-good K = 2; step down
    // then up so both directions record.
    stack.set_active_aggregators(1);
    stack.set_active_aggregators(3);
    let events = stack.tracer().unwrap().events();
    let steps: Vec<&TraceEvent> = events
        .iter()
        .filter(|e| {
            matches!(
                e.kind,
                TraceEventKind::Grow { .. } | TraceEventKind::Shrink { .. }
            )
        })
        .collect();
    assert_eq!(steps.len(), 2, "one event per resize step: {events:?}");
    assert!(matches!(steps[0].kind, TraceEventKind::Shrink { k: 1 }));
    assert!(matches!(steps[1].kind, TraceEventKind::Grow { k: 3 }));
    for s in steps {
        assert_eq!(s.tid, u32::MAX, "control-plane events carry no tid");
    }
}

#[test]
fn chrome_dump_is_structurally_valid_json() {
    let (_stack, events) = traced_run(8);
    let json = chrome_trace_json(&events);
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.trim_end().ends_with('}'));
    // Balanced braces/brackets outside strings — the structural check
    // the nightly smoke does with a real JSON parser.
    let (mut depth, mut in_str, mut esc) = (0i64, false, false);
    for c in json.chars() {
        if esc {
            esc = false;
            continue;
        }
        match c {
            '\\' if in_str => esc = true,
            '"' => in_str = !in_str,
            '{' | '[' if !in_str => depth += 1,
            '}' | ']' if !in_str => depth -= 1,
            _ => {}
        }
        assert!(depth >= 0, "unbalanced close");
    }
    assert_eq!(depth, 0, "unbalanced JSON nesting");
    assert!(!in_str, "unterminated string");
    // Spans for the batch lifecycle made it in.
    assert!(json.contains("\"combine\""));
    assert!(json.contains("\"batch\""));
}
