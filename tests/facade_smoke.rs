//! Build-surface smoke test: everything the facade documents must be
//! reachable through `sec_repro` and actually work. A manifest or
//! re-export regression (a dropped dependency edge, a renamed symbol, a
//! missing module) fails here loudly and in seconds, before the deeper
//! suites run.

mod common;

use sec_repro::StackHandle;
use std::sync::atomic::{AtomicU64, Ordering};

const THREADS: usize = 4;
const OPS_PER_THREAD: u64 = 2_000;

/// Round-trips balanced push/pop traffic on 4 threads through every
/// stack the facade exports and checks conservation of the popped sum.
#[test]
fn every_facade_stack_round_trips_on_four_threads() {
    with_all_stacks!(THREADS, |stack, name| {
        let popped_sum = AtomicU64::new(0);
        let pop_misses = AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..THREADS as u64 {
                let stack = &stack;
                let popped_sum = &popped_sum;
                let pop_misses = &pop_misses;
                s.spawn(move || {
                    let mut h = stack.register();
                    for i in 0..OPS_PER_THREAD {
                        h.push(t * OPS_PER_THREAD + i);
                        match h.pop() {
                            Some(v) => {
                                popped_sum.fetch_add(v, Ordering::Relaxed);
                            }
                            None => {
                                pop_misses.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                });
            }
        });
        // Every op pushed exactly once and popped at most once; after
        // the scope, pushes minus successful pops remain on the stack.
        let total = THREADS as u64 * OPS_PER_THREAD;
        let full_sum = (0..total).sum::<u64>();
        let mut h = stack.register();
        let mut drained_sum = 0u64;
        let mut drained = 0u64;
        while let Some(v) = h.pop() {
            drained_sum += v;
            drained += 1;
        }
        assert_eq!(
            drained,
            pop_misses.load(Ordering::Relaxed),
            "[{name}] leftover count must equal failed pops"
        );
        assert_eq!(
            popped_sum.load(Ordering::Relaxed) + drained_sum,
            full_sum,
            "[{name}] conservation: every pushed value popped exactly once"
        );
        assert_eq!(h.pop(), None, "[{name}] must be empty after drain");
    });
}

/// The facade's documented re-export surface, exercised symbol by
/// symbol so `src/lib.rs` and the member manifests cannot drift apart
/// silently.
#[test]
fn facade_re_exports_are_live() {
    // Top-level stack API.
    let stack: sec_repro::SecStack<u64> =
        sec_repro::SecStack::with_config(sec_repro::SecConfig::new(2, 2));
    let mut h = stack.register();
    h.push(7);
    assert_eq!(h.peek(), Some(7));
    assert_eq!(h.pop(), Some(7));
    let _report: sec_repro::BatchReport = stack.stats().report();

    // reclaim: pin/retire through the facade path.
    let collector = sec_repro::reclaim::Collector::new(1);
    let rh = collector.register().unwrap();
    let guard = rh.pin();
    unsafe { guard.retire(Box::into_raw(Box::new(1u64))) };
    drop(guard);

    // sync: primitives and the funnel.
    let lock = sec_repro::sync::TtasLock::new(0u32);
    *lock.lock() += 1;
    let funnel = sec_repro::sync::AggregatingFunnel::new(1, 0);
    assert_eq!(funnel.fetch_add_one(0), 0);
    assert!(sec_repro::sync::topology::hardware_threads() >= 1);

    // linearize: a two-op history checks out.
    let history = vec![
        sec_repro::linearize::Event {
            thread: 0,
            op: sec_repro::linearize::Op::Push(1u64),
            invoke: 0,
            response: 1,
        },
        sec_repro::linearize::Event {
            thread: 0,
            op: sec_repro::linearize::Op::Pop(Some(1u64)),
            invoke: 2,
            response: 3,
        },
    ];
    assert!(sec_repro::linearize::check_history(&history).is_ok());
    assert!(sec_repro::linearize::check_conservation(&history).is_ok());

    // workload: one tiny throughput run through the dispatcher.
    let mut cfg = sec_repro::workload::RunConfig::new(2, sec_repro::workload::Mix::UPDATE_100);
    cfg.duration = std::time::Duration::from_millis(20);
    cfg.prefill = 16;
    let run =
        sec_repro::workload::run_algo(sec_repro::workload::Algo::Sec { aggregators: 2 }, &cfg);
    assert!(run.result.ops > 0, "throughput run must complete ops");

    // ext: the pool, deque and queue extensions.
    let pool: sec_repro::ext::SecPool<u64> = sec_repro::ext::SecPool::new(1, 1);
    let mut ph = pool.register();
    ph.put(3);
    assert_eq!(ph.get(), Some(3));
    let deque: sec_repro::ext::SecDeque<u64> = sec_repro::ext::SecDeque::new(1);
    let mut dh = deque.register();
    dh.push_back(4);
    assert_eq!(dh.pop_front(), Some(4));
    let queue: sec_repro::ext::SecQueue<u64> = sec_repro::ext::SecQueue::new(1);
    let mut qh = queue.register();
    qh.enqueue(5);
    qh.enqueue(6);
    assert_eq!(qh.dequeue(), Some(5));
    assert_eq!(qh.dequeue(), Some(6));
    assert_eq!(queue.rendezvous_hits(), 0);

    // The queue-family trait surface + baselines + workload path.
    fn trait_object_name<Q: sec_repro::ConcurrentQueue<u64>>(q: &Q) -> &'static str {
        q.name()
    }
    assert_eq!(trait_object_name(&queue), "SEC-Q");
    let ms: sec_repro::baselines::MsQueue<u64> = sec_repro::baselines::MsQueue::new(1);
    assert_eq!(trait_object_name(&ms), "MS");
    let lckq: sec_repro::baselines::LockedQueue<u64> = sec_repro::baselines::LockedQueue::new(1);
    assert_eq!(trait_object_name(&lckq), "LCK-Q");
    let qrun = sec_repro::workload::run_algo(sec_repro::workload::Algo::SecQueue, &cfg);
    assert!(
        qrun.result.ops > 0,
        "queue throughput run must complete ops"
    );
    assert_eq!(sec_repro::workload::QUEUE_LINEUP.len(), 3);

    // ext: the homogeneous counter and the keyed map.
    let counter = sec_repro::ext::SecCounter::new(1);
    let mut ch = counter.register();
    assert_eq!(ch.fetch_add(5), 0);
    assert_eq!(ch.load(), 5);
    let map: sec_repro::ext::SecMap<u64, u64> = sec_repro::ext::SecMap::new(1);
    let mut mh = map.register();
    assert_eq!(mh.insert(9, 90), None);
    assert_eq!(mh.get(&9), Some(90));
    assert_eq!(mh.remove(&9), Some(90));

    // The map trait surface + baseline + workload path.
    fn map_name<M: sec_repro::ConcurrentMap<u64, u64>>(m: &M) -> &'static str {
        m.name()
    }
    assert_eq!(map_name(&map), "SEC-M");
    let lckm: sec_repro::baselines::LockedHashMap<u64, u64> =
        sec_repro::baselines::LockedHashMap::new(1);
    assert_eq!(map_name(&lckm), "LCK-M");
    let mrun = sec_repro::workload::run_algo(sec_repro::workload::Algo::SecMap, &cfg);
    assert!(mrun.result.ops > 0, "map throughput run must complete ops");
    let crun = sec_repro::workload::run_algo(sec_repro::workload::Algo::SecCounter, &cfg);
    assert!(
        crun.result.ops > 0,
        "counter throughput run must complete ops"
    );
    assert_eq!(sec_repro::workload::MAP_LINEUP.len(), 2);
    assert_eq!(sec_repro::workload::SEC_FAMILIES.len(), 5);
}
