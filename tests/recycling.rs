//! Integration: the node-recycling ABA/leak battery (DESIGN.md §10).
//!
//! Recycling reuses the memory of retired nodes and batches. The
//! classic hazard of reuse is **ABA/resurrection**: a block handed back
//! out while some thread still holds a pre-retirement pointer to it.
//! The epochs are supposed to make that impossible — a block enters a
//! free list only once no pinned thread can still reference it, the
//! same fence that made *freeing* safe. This suite attacks exactly that
//! claim:
//!
//! * a reclaim-level regression test pins a reader across the
//!   retirement and asserts the block cannot resurface until the
//!   reader unpins — and that it *does* resurface (same address)
//!   afterwards, proving the recycling path is live;
//! * stack and queue churn tests recycle nodes across epochs
//!   mid-traversal (stack `pop`/`peek` vs reuse, queue `head.next`
//!   rendezvous vs reuse) under seed-derived schedules, asserting
//!   conservation and that no resurrected value ever appears;
//! * leak-accounting tests drive every family (stack, queue, deque,
//!   pool) through a conservation-style run + drain and assert the
//!   retirement identity `retired − freed − cached == 0` once the
//!   collector quiesces — recycling must not leak and must not
//!   double-account.
//!
//! Seeded tests honor the schedule-harness knobs: replay one failure
//! with `SCHEDULE_SEED=<seed> cargo test --test recycling`, widen the
//! sweep with `SCHEDULE_SEEDS=N` (the nightly CI job raises it).

use sec_repro::ext::{SecDeque, SecPool, SecQueue};
use sec_repro::reclaim::{Collector, CollectorStats, RecyclePolicy};
use sec_repro::{SecConfig, SecStack};
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::thread;

const SEED_BASE: u64 = 0x00AB_A5EC;

fn sweep_seeds(default_count: u64) -> Vec<u64> {
    if let Ok(s) = std::env::var("SCHEDULE_SEED") {
        let seed = s.parse().expect("SCHEDULE_SEED must be a u64");
        return vec![seed];
    }
    let n = std::env::var("SCHEDULE_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default_count);
    (0..n).map(|i| SEED_BASE.wrapping_add(i)).collect()
}

fn replay_hint(seed: u64) -> String {
    format!("replay with: SCHEDULE_SEED={seed} cargo test --test recycling")
}

/// Tiny xorshift so the seeded tests need no RNG crate plumbing.
fn xorshift(x: &mut u64) -> u64 {
    *x ^= *x << 13;
    *x ^= *x >> 7;
    *x ^= *x << 17;
    *x
}

/// A cache small enough that churn constantly overflows into the
/// global pool and refills out of it — the widest recycling surface.
const TINY_CACHE: RecyclePolicy = RecyclePolicy::PerThread { cache_cap: 4 };

// ----------------------------------------------------------------------
// ABA regression, reclaim level: the epoch fence must gate reuse.
// ----------------------------------------------------------------------

#[test]
fn epoch_fence_blocks_reuse_until_the_pinned_reader_unpins() {
    use core::alloc::Layout;
    let layout = Layout::new::<u64>();
    let collector = Collector::with_recycle(2, RecyclePolicy::PerThread { cache_cap: 8 });
    let reader = collector.register().unwrap();
    let writer = collector.register().unwrap();

    // The reader pins — from here on it may hold references to
    // anything it can still reach, including the block below.
    let pin = reader.pin();

    let block = Box::into_raw(Box::new(0xABAB_ABAB_u64));
    {
        let g = writer.pin();
        // Retire the block for recycling while the reader is pinned.
        unsafe { g.retire_recycle(block) };
    }

    // The stale pin must hold the epoch back: no amount of flushing
    // may make the block allocatable while the reader could still
    // dereference it. (This is the resurrection bug this test exists
    // to catch: a pop that reuses a node another thread is still
    // traversing.)
    let pending = writer.flush(16);
    assert_eq!(pending, 1, "the block must still be in limbo");
    assert!(
        writer.alloc_raw(layout).is_none(),
        "ABA: block resurfaced while a stale pin could still reference it"
    );

    // Reader unpins: the fence lifts, the block quiesces into the
    // writer's cache and the very same address comes back out.
    drop(pin);
    assert_eq!(writer.flush(16), 0, "unblocked flush drains the limbo bag");
    let reused = writer
        .alloc_raw(layout)
        .expect("quiesced block must be reusable");
    assert_eq!(
        reused.as_ptr().cast::<u64>(),
        block,
        "recycling must hand back the quiesced block itself"
    );
    // Hand the block back to the allocator by rebuilding the box.
    drop(unsafe { Box::from_raw(reused.as_ptr().cast::<u64>()) });

    let stats = collector.stats();
    assert_eq!(stats.retired, 1);
    assert_eq!(stats.cached, 1, "the block entered a free list");
    assert_eq!(stats.freed, 0);
    drop(reader);
    drop(writer);
}

#[test]
fn recycling_off_never_caches_or_hits() {
    use core::alloc::Layout;
    let collector = Collector::new(1); // Off by default for direct users
    let h = collector.register().unwrap();
    {
        let g = h.pin();
        unsafe { g.retire_recycle(Box::into_raw(Box::new(7_u64))) };
    }
    h.flush(16);
    assert!(h.alloc_raw(Layout::new::<u64>()).is_none());
    let stats = collector.stats();
    assert_eq!(stats.cached, 0);
    assert_eq!(stats.retired, 1);
    assert_eq!(stats.freed, 1, "Off: quiesced blocks go to the allocator");
}

// ----------------------------------------------------------------------
// ABA regression, stack level: pop/peek vs reuse under churn.
// ----------------------------------------------------------------------

/// Threads push tagged unique values and pop/peek concurrently on a
/// tiny-cache stack, so node husks recycle constantly while other
/// threads are mid-traversal. Conservation (no loss, no duplication)
/// and domain checks (no resurrected garbage observed by `peek`)
/// together assert the epoch fence held.
#[test]
fn stack_pop_and_peek_vs_reuse_churn() {
    for seed in sweep_seeds(6) {
        let mut s = seed | 1;
        let threads = 3 + (xorshift(&mut s) % 3) as usize; // 3..=5
        let per = 800 + (xorshift(&mut s) % 800) as usize;
        let stack: SecStack<u64> =
            SecStack::with_config(SecConfig::new(2, threads + 1).recycle(TINY_CACHE));

        let popped: Vec<Vec<u64>> = thread::scope(|scope| {
            (0..threads)
                .map(|t| {
                    let stack = &stack;
                    scope.spawn(move || {
                        let mut h = stack.register();
                        let mut got = Vec::new();
                        let mut x = (seed ^ t as u64) | 1;
                        for i in 0..per {
                            let v = ((t as u64) << 32) | i as u64;
                            h.push(v);
                            match xorshift(&mut x) % 4 {
                                0 | 1 => {
                                    if let Some(p) = h.pop() {
                                        got.push(p);
                                    }
                                }
                                2 => {
                                    // Mid-traversal reader: a peek holds
                                    // a pin while reading a node other
                                    // threads may pop and recycle.
                                    if let Some(p) = h.peek() {
                                        let tid = (p >> 32) as usize;
                                        assert!(
                                            tid < threads && (p & 0xFFFF_FFFF) < per as u64,
                                            "seed {seed}: peek saw resurrected garbage {p:#x}\n{}",
                                            replay_hint(seed)
                                        );
                                    }
                                }
                                _ => {}
                            }
                        }
                        got
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|j| j.join().unwrap())
                .collect()
        });

        let mut seen: HashSet<u64> = HashSet::new();
        for v in popped.into_iter().flatten() {
            assert!(
                seen.insert(v),
                "seed {seed}: value {v:#x} popped twice (node resurrected)\n{}",
                replay_hint(seed)
            );
        }
        let mut h = stack.register();
        while let Some(v) = h.pop() {
            assert!(
                seen.insert(v),
                "seed {seed}: value {v:#x} duplicated in drain\n{}",
                replay_hint(seed)
            );
        }
        drop(h);
        assert_eq!(
            seen.len(),
            threads * per,
            "seed {seed}: values lost under recycling churn\n{}",
            replay_hint(seed)
        );
        let stats = stack.reclaim_stats();
        assert!(
            stats.recycle_hits > 0,
            "seed {seed}: churn must actually exercise reuse: {stats:?}"
        );
        assert!(
            stats.recycle_overflows > 0,
            "seed {seed}: the tiny cache must overflow into the pool: {stats:?}"
        );
    }
}

// ----------------------------------------------------------------------
// ABA regression, queue level: head.next rendezvous vs reuse.
// ----------------------------------------------------------------------

/// Producer/consumer ping-pong around the empty state: the dequeue
/// combiner validates emptiness and holds the rendezvous window open on
/// `head.next` while dummies and node husks recycle underneath it. A
/// resurrected node spliced at `head.next` would surface as an invented
/// or duplicated value.
#[test]
fn queue_head_rendezvous_vs_reuse_churn() {
    for seed in sweep_seeds(6) {
        let mut s = seed | 1;
        let rounds = 1_500 + (xorshift(&mut s) % 1_000);
        let spins = [16u32, 128, 256][(xorshift(&mut s) % 3) as usize];
        let queue: SecQueue<u64> = SecQueue::new(3)
            .rendezvous_spins(spins)
            .recycle_policy(TINY_CACHE);

        let consumed: Vec<u64> = thread::scope(|scope| {
            let producer = &queue;
            scope.spawn(move || {
                let mut h = producer.register();
                for i in 0..rounds {
                    h.enqueue(i);
                }
            });
            let consumer = &queue;
            scope
                .spawn(move || {
                    let mut h = consumer.register();
                    let mut got = Vec::new();
                    while got.len() < rounds as usize {
                        if let Some(v) = h.dequeue() {
                            got.push(v);
                        }
                    }
                    got
                })
                .join()
                .unwrap()
        });

        let mut seen = HashSet::new();
        for v in &consumed {
            assert!(
                *v < rounds,
                "seed {seed}: invented value {v} (resurrected node at head.next)\n{}",
                replay_hint(seed)
            );
            assert!(
                seen.insert(*v),
                "seed {seed}: value {v} dequeued twice\n{}",
                replay_hint(seed)
            );
        }
        assert_eq!(seen.len(), rounds as usize, "seed {seed}: values lost");
        let stats = queue.reclaim_stats();
        assert!(
            stats.recycle_hits > 0,
            "seed {seed}: queue churn must reuse blocks: {stats:?}"
        );
    }
}

// ----------------------------------------------------------------------
// Leak accounting: retired − freed − cached == 0 across all families.
// ----------------------------------------------------------------------

fn assert_leak_identity(name: &str, stats: CollectorStats) {
    assert_eq!(
        stats.pending(),
        0,
        "[{name}] leak: retired {} − freed {} − cached {} != 0 ({stats:?})",
        stats.retired,
        stats.freed,
        stats.cached
    );
    assert_eq!(
        stats.retired,
        stats.freed + stats.cached,
        "[{name}] accounting identity broken: {stats:?}"
    );
}

/// Runs each family through a mixed conservation-style workload plus a
/// full drain, then quiesces the collector and checks the identity —
/// with recycling on (default), with a tiny overflowing cache, and off.
#[test]
fn leak_identity_holds_across_all_families_and_policies() {
    const THREADS: usize = 4;
    const PER: usize = 600;
    for policy in [RecyclePolicy::per_thread(), TINY_CACHE, RecyclePolicy::Off] {
        // Stack.
        {
            let stack: SecStack<u64> =
                SecStack::with_config(SecConfig::new(2, THREADS + 1).recycle(policy));
            thread::scope(|scope| {
                for t in 0..THREADS {
                    let stack = &stack;
                    scope.spawn(move || {
                        let mut h = stack.register();
                        for i in 0..PER {
                            h.push((t * PER + i) as u64);
                            if i % 3 != 0 {
                                let _ = h.pop();
                            }
                        }
                    });
                }
            });
            let mut h = stack.register();
            while h.pop().is_some() {}
            drop(h);
            assert_leak_identity(&format!("stack/{policy:?}"), stack.quiesce_reclamation(64));
        }
        // Queue.
        {
            let queue: SecQueue<u64> = SecQueue::new(THREADS + 1).recycle_policy(policy);
            thread::scope(|scope| {
                for t in 0..THREADS {
                    let queue = &queue;
                    scope.spawn(move || {
                        let mut h = queue.register();
                        for i in 0..PER {
                            h.enqueue((t * PER + i) as u64);
                            if i % 3 != 0 {
                                let _ = h.dequeue();
                            }
                        }
                    });
                }
            });
            let mut h = queue.register();
            while h.dequeue().is_some() {}
            drop(h);
            assert_leak_identity(&format!("queue/{policy:?}"), queue.quiesce_reclamation(64));
        }
        // Deque.
        {
            let deque: SecDeque<u64> = SecDeque::new(THREADS + 1).recycle_policy(policy);
            thread::scope(|scope| {
                for t in 0..THREADS {
                    let deque = &deque;
                    scope.spawn(move || {
                        let mut h = deque.register();
                        for i in 0..PER {
                            match (t + i) % 4 {
                                0 => h.push_front((t * PER + i) as u64),
                                1 => h.push_back((t * PER + i) as u64),
                                2 => {
                                    let _ = h.pop_front();
                                }
                                _ => {
                                    let _ = h.pop_back();
                                }
                            }
                        }
                    });
                }
            });
            let mut h = deque.register();
            while h.pop_front().is_some() {}
            drop(h);
            assert_leak_identity(&format!("deque/{policy:?}"), deque.quiesce_reclamation(64));
        }
        // Pool.
        {
            let pool: SecPool<u64> = SecPool::with_recycle(2, THREADS + 1, policy);
            thread::scope(|scope| {
                for t in 0..THREADS {
                    let pool = &pool;
                    scope.spawn(move || {
                        let mut h = pool.register();
                        for i in 0..PER {
                            h.put((t * PER + i) as u64);
                            if i % 2 == 0 {
                                let _ = h.get();
                            }
                        }
                    });
                }
            });
            let mut h = pool.register();
            while h.get().is_some() {}
            drop(h);
            assert_leak_identity(&format!("pool/{policy:?}"), pool.quiesce_reclamation(64));
        }
    }
}

/// A long soak on one stack: repeated run/drain cycles, identity
/// checked after every drain (the "after every conservation/soak
/// drain" clause of the satellite).
#[test]
fn leak_identity_holds_after_every_soak_drain() {
    const THREADS: usize = 3;
    let stack: SecStack<u64> =
        SecStack::with_config(SecConfig::new(2, THREADS + 1).recycle(TINY_CACHE));
    for cycle in 0..5u64 {
        let stop = AtomicBool::new(false);
        thread::scope(|scope| {
            for t in 0..THREADS {
                let stack = &stack;
                let stop = &stop;
                scope.spawn(move || {
                    let mut h = stack.register();
                    let mut i = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        h.push((t as u64) << 32 | i);
                        if !i.is_multiple_of(3) {
                            let _ = h.pop();
                        }
                        i += 1;
                        if i > 4_000 {
                            break;
                        }
                    }
                });
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
            stop.store(true, Ordering::Relaxed);
        });
        let mut h = stack.register();
        while h.pop().is_some() {}
        drop(h);
        let stats = stack.quiesce_reclamation(64);
        assert_leak_identity(&format!("soak cycle {cycle}"), stats);
    }
    assert!(
        stack.reclaim_stats().recycle_hits > 0,
        "the soak must exercise reuse"
    );
}
