//! # `sec-repro` — Sharded Elimination and Combining stacks, reproduced
//!
//! Facade crate for the reproduction of *"Sharded Elimination and
//! Combining for Highly-Efficient Concurrent Stacks"* (Singh,
//! Metaxakis, Fatourou — PPoPP '26). Re-exports the public API of every
//! member crate so applications can depend on one name:
//!
//! * [`SecStack`] — the paper's stack (aggregators → batches →
//!   counter-based elimination → substack combining),
//! * [`ext::SecQueue`] — the FIFO queue built from the same mechanisms
//!   (per-end batches, single-CAS splice/unlink, empty-only
//!   elimination; DESIGN.md §9),
//! * [`ext::SecCounter`] — the combining fetch-add counter, the
//!   minimal instantiation of the generic combining engine every
//!   SEC-family structure runs on (DESIGN.md §12),
//! * [`ext::SecMap`] — the batched-combining keyed hash map (buckets
//!   block-partitioned into shards, one aggregator per shard, results
//!   through announcement slots; DESIGN.md §13),
//! * [`baselines`] — the five competitor stacks from the evaluation
//!   (Treiber, elimination-backoff, flat-combining, CC-Synch,
//!   timestamped-interval) plus the queue baselines (Michael–Scott,
//!   locked `VecDeque`) and the map baseline (locked `HashMap`),
//! * [`reclaim`] — the DEBRA-style epoch-based reclamation substrate,
//! * [`sync`] — concurrency primitives (backoff, spin-then-park
//!   waiting, cache padding, TTAS lock, TSC clock, aggregating
//!   funnels),
//! * [`linearize`] — history recording + linearizability checking,
//! * [`workload`] — the benchmark harness behind the paper's figures.
//!
//! ## Quick start
//!
//! ```
//! use sec_repro::{ConcurrentStack, SecStack, StackHandle};
//!
//! let stack: SecStack<u64> = SecStack::new(8); // up to 8 threads
//! std::thread::scope(|s| {
//!     for t in 0..4u64 {
//!         let stack = &stack;
//!         s.spawn(move || {
//!             let mut h = stack.register();
//!             h.push(t);
//!             h.pop();
//!         });
//!     }
//! });
//! ```
//!
//! See `examples/` for runnable scenarios (work-pool graph traversal, a
//! shared freelist, an algorithm shoot-out) and `crates/bench` for the
//! figure/table regeneration binaries.

#![warn(missing_docs)]

pub use sec_core::{
    topology_shard, AggregatorPolicy, BatchReport, CollectorStats, ConcurrentMap, ConcurrentQueue,
    ConcurrentStack, DegreeDist, MapHandle, QueueHandle, RecyclePolicy, SecConfig, SecHandle,
    SecStack, SecStats, ShardPolicy, StackHandle, TraceConfig, TraceRates, TraceSnapshot,
    WaitPolicy,
};

/// The sec-trace observability layer (DESIGN.md §14): per-thread event
/// rings, mergeable HDR-style histograms, Chrome-trace export and the
/// `TraceSnapshot` polling API. The types compile unconditionally; the
/// engine only records into them when built with `--features trace`.
pub mod trace {
    pub use sec_core::trace::{
        chrome_trace_json, DegreeDist, Histogram, TraceConfig, TraceEvent, TraceEventKind,
        TraceLane, TraceRates, TraceRecorder, TraceSnapshot,
    };
}

/// The elastic-sharding contention monitor (DESIGN.md §8): pure
/// decision function + window accumulator, exposed for the property
/// suites.
pub mod elastic {
    pub use sec_core::sec::elastic::{decide, ContentionMonitor, Direction, WindowSample};
}

/// Extensions built from the paper's mechanisms (DESIGN.md §7, §9,
/// §12 and §13): a sharded pool, a deque with per-end elimination +
/// combining, the batched-combining FIFO queue, the combining
/// fetch-add counter that exercises the generic engine seam, and the
/// batched-combining keyed hash map.
pub mod ext {
    pub use sec_core::counter::{SecCounter, SecCounterHandle};
    pub use sec_core::deque::{DequeHandle, End, SecDeque};
    pub use sec_core::map::{SecMap, SecMapHandle};
    pub use sec_core::pool::{PoolHandle, SecPool};
    pub use sec_core::queue::{SecQueue, SecQueueHandle};
}

/// The five competitor stacks of the paper's evaluation, plus the
/// queue-family baselines (Michael–Scott, locked `VecDeque`) and the
/// map-family baseline (locked `HashMap`).
pub mod baselines {
    pub use sec_baselines::{
        CcHandle, CcStack, EbHandle, EbStack, FcHandle, FcStack, LockedHandle, LockedHashMap,
        LockedHashMapHandle, LockedQueue, LockedQueueHandle, LockedStack, MsHandle, MsQueue,
        SeqStack, TreiberHandle, TreiberHpHandle, TreiberHpStack, TreiberStack, TsiHandle,
        TsiStack,
    };
}

/// Crash-durable SEC (DESIGN.md §16): the persistent-heap backend,
/// the per-shard redo log's policy knobs, the recovery report types
/// the `recover()` constructors return, and the fault-injection
/// points the kill-9 harness arms via `SEC_CRASH_POINT`.
pub mod durable {
    pub use sec_core::{
        opcode, DurableError, DurableMode, DurablePolicy, DurableStats, FaultPoint, HandleRecovery,
        LogGranularity, LoggedOp, OpResult, PendingOutcome, RecoveryReport, SyncMode,
    };
    pub use sec_reclaim::PersistentHeap;
}

/// Epoch-based memory reclamation (DEBRA-style) with node recycling
/// (DESIGN.md §10).
pub mod reclaim {
    pub use sec_reclaim::{
        Collector, CollectorStats, Guard, Handle, HpDomain, HpHandle, PersistentHeap, RecyclePolicy,
    };
}

/// Concurrency primitives substrate.
pub mod sync {
    pub use sec_sync::event::{spin_wait, WaitCell, WaitPolicy, WaitQueue, WaitStats};
    pub use sec_sync::funnel::AggregatingFunnel;
    pub use sec_sync::{
        topology, Backoff, CachePadded, ClhLock, McsLock, Timestamp, TscClock, TtasLock,
    };
}

/// History recording and linearizability checking.
pub mod linearize {
    pub use sec_linearize::{check_conservation, check_history, Event, Op, Recorder, Violation};
}

/// Workload generation and throughput measurement.
pub mod workload {
    pub use sec_workload::{
        replay, run_algo, run_counter_throughput, run_map_throughput, run_queue_throughput,
        run_throughput, stats, table, trace, Algo, DurableSetup, KeyDist, KeySampler, MapMix,
        MapOpKind, Mix, OpKind, ReplayResult, RunConfig, RunResult, Trace, TraceOp,
        ALL_COMPETITORS, EXTENDED_LINEUP, MAP_LINEUP, QUEUE_LINEUP, SEC_FAMILIES,
    };
}
