//! Fault-injection child for the kill-9 crash-recovery harness
//! (`tests/crash_recovery.rs`).
//!
//! Runs a seeded, deterministic workload against a file-backed durable
//! SEC structure and lets the armed fault point (`SEC_CRASH_POINT`,
//! `SEC_CRASH_AFTER` — see `sec_core`'s `fault` module) SIGKILL the
//! process at a precise spot in the combining/logging protocol. The
//! parent test then recovers from the heap file and checks
//! conservation and detectability.
//!
//! Usage:
//!
//! ```text
//! crash_child run <stack|queue|counter|map> <heap-path> <threads> <ops> <seed>
//! crash_child recover <stack|queue|counter|map> <heap-path>
//! ```

use sec_repro::durable::DurablePolicy;
use sec_repro::ext::{SecCounter, SecMap, SecQueue};
use sec_repro::SecStack;

/// The heap geometry every harness case uses (small: the sweep creates
/// hundreds of heap files). Must match the parent test's expectations
/// only in so far as the file is self-describing — recovery reads the
/// geometry back out of the header.
fn policy(path: &str) -> DurablePolicy {
    DurablePolicy::file(path)
        .shards(2)
        .record_capacity(512)
        .batch_entries(16)
}

/// SplitMix-style step: deterministic per-thread op streams.
fn next(s: &mut u64) -> u64 {
    *s = s
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    let z = *s;
    let z = (z ^ (z >> 33)).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    z ^ (z >> 33)
}

fn run_stack(path: &str, threads: usize, ops: usize, seed: u64) {
    let s = SecStack::<u64>::durable(threads, policy(path)).expect("create durable stack");
    std::thread::scope(|scope| {
        for t in 0..threads {
            let s = &s;
            scope.spawn(move || {
                let mut h = s.register();
                let mut rng = seed ^ (t as u64).wrapping_mul(0x9E37_79B9);
                for i in 0..ops {
                    if next(&mut rng) % 4 == 3 {
                        h.pop();
                    } else {
                        h.push(((t as u64) << 32) | i as u64);
                    }
                }
            });
        }
    });
}

fn run_queue(path: &str, threads: usize, ops: usize, seed: u64) {
    let q = SecQueue::<u64>::durable(threads, policy(path)).expect("create durable queue");
    std::thread::scope(|scope| {
        for t in 0..threads {
            let q = &q;
            scope.spawn(move || {
                let mut h = q.register();
                let mut rng = seed ^ (t as u64).wrapping_mul(0x9E37_79B9);
                for i in 0..ops {
                    if next(&mut rng) % 4 == 3 {
                        h.dequeue();
                    } else {
                        h.enqueue(((t as u64) << 32) | i as u64);
                    }
                }
            });
        }
    });
}

fn run_counter(path: &str, threads: usize, ops: usize, seed: u64) {
    let c = SecCounter::durable(threads, policy(path)).expect("create durable counter");
    std::thread::scope(|scope| {
        for t in 0..threads {
            let c = &c;
            scope.spawn(move || {
                let mut h = c.register();
                let mut rng = seed ^ (t as u64).wrapping_mul(0x9E37_79B9);
                for _ in 0..ops {
                    h.fetch_add(next(&mut rng) % 1000);
                }
            });
        }
    });
}

fn run_map(path: &str, threads: usize, ops: usize, seed: u64) {
    let m = SecMap::<u64, u64>::durable(threads, policy(path)).expect("create durable map");
    std::thread::scope(|scope| {
        for t in 0..threads {
            let m = &m;
            scope.spawn(move || {
                let mut h = m.register();
                let mut rng = seed ^ (t as u64).wrapping_mul(0x9E37_79B9);
                for i in 0..ops {
                    // A small shared key space so inserts, removes and
                    // gets genuinely collide across threads.
                    let key = next(&mut rng) % 64;
                    match i % 4 {
                        0 | 1 => {
                            h.insert(key, ((t as u64) << 32) | i as u64);
                        }
                        2 => {
                            h.get(&key);
                        }
                        _ => {
                            h.remove(&key);
                        }
                    }
                }
            });
        }
    });
}

fn recover(family: &str, path: &str) {
    let n = match family {
        "stack" => {
            let (_s, r) = SecStack::<u64>::recover(DurablePolicy::file(path)).expect("recover");
            r.replayed_ops()
        }
        "queue" => {
            let (_q, r) = SecQueue::<u64>::recover(DurablePolicy::file(path)).expect("recover");
            r.replayed_ops()
        }
        "counter" => {
            let (_c, r) = SecCounter::recover(DurablePolicy::file(path)).expect("recover");
            r.replayed_ops()
        }
        "map" => {
            let (_m, r) = SecMap::<u64, u64>::recover(DurablePolicy::file(path)).expect("recover");
            r.replayed_ops()
        }
        other => panic!("unknown family {other}"),
    };
    println!("RECOVERED {n}");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("run") => {
            let family = &args[2];
            let path = &args[3];
            let threads: usize = args[4].parse().expect("threads");
            let ops: usize = args[5].parse().expect("ops");
            let seed: u64 = args[6].parse().expect("seed");
            match family.as_str() {
                "stack" => run_stack(path, threads, ops, seed),
                "queue" => run_queue(path, threads, ops, seed),
                "counter" => run_counter(path, threads, ops, seed),
                "map" => run_map(path, threads, ops, seed),
                other => panic!("unknown family {other}"),
            }
            // Reaching here means the armed fault point never fired
            // (or none was armed): the workload ran to completion.
            println!("DONE");
        }
        Some("recover") => recover(&args[2], &args[3]),
        _ => {
            eprintln!(
                "usage: crash_child run <family> <path> <threads> <ops> <seed> | \
                 crash_child recover <family> <path>"
            );
            std::process::exit(2);
        }
    }
}
