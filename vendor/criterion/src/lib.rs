//! Offline stand-in for the
//! [`criterion`](https://crates.io/crates/criterion) crate.
//!
//! This build environment has no network access, so the workspace
//! vendors the API subset its benches use: `criterion_group!` /
//! `criterion_main!`, benchmark groups with `sample_size` /
//! `warm_up_time` / `measurement_time` / `throughput`, and benchers
//! with `iter` / `iter_custom`. Instead of Criterion's full
//! statistical pipeline, each benchmark runs one warm-up sample and a
//! handful of measured samples, then prints `group/id  median  (min …
//! max)` — enough to compare algorithms locally and to keep
//! `cargo bench` seconds-scale. Swap the path dependency in the
//! workspace root `Cargo.toml` for the real crate when a registry is
//! reachable.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Number of measured samples per benchmark (the real crate's
/// `sample_size` is accepted but capped to this, keeping the whole
/// suite fast).
const MAX_SAMPLES: usize = 5;

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Measurement strategies (only wall-clock time is provided).
pub mod measurement {
    /// Wall-clock time measurement — the shim's only measurement.
    pub struct WallTime;
}

/// Units for normalizing reported times, accepted and echoed.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier (function name, optional parameter).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id of the form `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Creates an id from just a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// The timing loop handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` back-to-back calls of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Lets the closure time `iters` iterations itself and report the
    /// total duration (fixed-work measurements that exclude setup).
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        self.elapsed = f(self.iters);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    _criterion: &'a mut Criterion,
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
    _measurement: std::marker::PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Accepted for API compatibility; the shim caps samples at
    /// [`MAX_SAMPLES`].
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.clamp(2, MAX_SAMPLES);
        self
    }

    /// Accepted and ignored (the shim warms up with one sample).
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted and ignored (the shim's duration is sample-count bound).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Records the per-iteration work so the summary can report a rate.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs `f` as a benchmark named `id` within this group.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        run_one(&full, self.samples, self.throughput, |b| f(b));
        self
    }

    /// Runs `f` with a borrowed input as a benchmark named `id`.
    pub fn bench_with_input<I, In, F>(&mut self, id: I, input: &In, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        In: ?Sized,
        F: FnMut(&mut Bencher, &In),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        run_one(&full, self.samples, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group (prints nothing extra in the shim).
    pub fn finish(self) {}
}

/// Runs one benchmark: a single-iteration warm-up sizes the iteration
/// count so each sample takes ~2 ms (nanosecond-scale bodies are not
/// swamped by timer overhead), then `samples` measured samples run and
/// a per-iteration summary line prints.
fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: usize, tp: Option<Throughput>, mut f: F) {
    const TARGET_SAMPLE: Duration = Duration::from_millis(2);

    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b); // warm-up doubles as the calibration sample
    let est = b.elapsed.max(Duration::from_nanos(1));
    b.iters = (TARGET_SAMPLE.as_nanos() / est.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut times: Vec<Duration> = Vec::with_capacity(samples);
    for _ in 0..samples {
        b.elapsed = Duration::ZERO;
        f(&mut b);
        times.push(b.elapsed / b.iters as u32);
    }
    times.sort_unstable();
    let median = times[times.len() / 2];
    let rate = match tp {
        Some(Throughput::Elements(n)) if median > Duration::ZERO => {
            format!("  {:.2} Melem/s", n as f64 / median.as_secs_f64() / 1e6)
        }
        Some(Throughput::Bytes(n)) if median > Duration::ZERO => {
            format!(
                "  {:.2} MiB/s",
                n as f64 / median.as_secs_f64() / (1 << 20) as f64
            )
        }
        _ => String::new(),
    };
    println!(
        "bench {name:<48} median {median:>12?}/iter  (min {:?} … max {:?}, {} iters/sample){rate}",
        times[0],
        times[times.len() - 1],
        b.iters,
    );
}

/// The benchmark driver; one per process, shared by all groups.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepted for API compatibility; CLI flags are ignored by the
    /// shim (it is already fast and plots nothing).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            samples: 3,
            throughput: None,
            _measurement: std::marker::PhantomData,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, 3, None, |b| f(b));
        self
    }

    /// Prints the final summary (a no-op in the shim).
    pub fn final_summary(&mut self) {}
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` runs bench targets with `--test`: nothing to
            // assert here, so exit quickly and leave timing to
            // `cargo bench`.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $( $group(); )+
        }
    };
}
