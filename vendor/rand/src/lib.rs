//! Offline stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate (0.8 API subset).
//!
//! This build environment has no network access, so the workspace
//! vendors the tiny slice of `rand` it actually uses: a seedable small
//! RNG ([`rngs::SmallRng`], here SplitMix64) and uniform integer range
//! sampling via [`Rng::gen_range`]. The workload generators only need
//! speed and determinism-under-seed, not cryptographic or
//! statistical-suite quality, and SplitMix64 passes the bar for
//! uniform op-mix draws. Swap this path dependency for the real crate
//! in the workspace root `Cargo.toml` when a registry is reachable.

#![warn(missing_docs)]

/// Low-level source of random `u64`s (the `rand_core` trait, reduced).
pub trait RngCore {
    /// Returns the next pseudo-random 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`] like the real crate does.
pub trait Rng: RngCore {
    /// Samples a uniform value from `range` (exclusive or inclusive).
    ///
    /// Uses modulo reduction: biased by at most 2⁻⁴⁰ for the ≤ 2²⁴-wide
    /// ranges this workspace draws, which is irrelevant for workload
    /// generation.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Construction from seeds (reduced to the one constructor used here).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed; equal seeds give equal
    /// streams.
    fn seed_from_u64(state: u64) -> Self;
}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform value using `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, seedable generator (SplitMix64 — the real
    /// `SmallRng` is xoshiro256++, equivalent for workload draws).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            SmallRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn all_values_reachable() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
