//! Offline stand-in for the
//! [`proptest`](https://crates.io/crates/proptest) crate.
//!
//! This build environment has no network access, so the workspace
//! vendors the API subset its property suites use:
//!
//! * [`strategy::Strategy`] with integer-range strategies,
//!   [`strategy::Just`], `prop_map`, `boxed`,
//! * [`collection::vec`] for variable-length vectors,
//! * the [`proptest!`] macro with `#![proptest_config(..)]`,
//!   [`prop_oneof!`], [`prop_assert!`], [`prop_assert_eq!`],
//!   [`prop_assert_ne!`] and [`prop_assume!`].
//!
//! Differences from the real crate, deliberate for a test shim:
//! generation is deterministic per (test name, attempt index) with no
//! persisted failure seeds, and failing inputs are **not shrunk** — the
//! failure message reports the attempt number so a failure reproduces
//! by rerunning the test. Case counts honor the `PROPTEST_CASES`
//! environment variable (capped by a 10× attempt budget when
//! `prop_assume!` rejects heavily), which keeps tier-1 bounded. Swap
//! the path dependency in the workspace root `Cargo.toml` for the real
//! crate when a registry is reachable.

#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Strategies for collections (only `vec` is provided).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A strategy producing `Vec`s of `element` with a length drawn
    /// uniformly from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Namespace mirror of the real crate's `prop` re-export, so
/// `prop::collection::vec(..)` resolves through the prelude.
pub mod prop {
    pub use crate::collection;
}

/// The glob-import surface test files use.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: an optional `#![proptest_config(..)]` inner
/// attribute followed by `#[test]` functions whose arguments are drawn
/// from strategies (`name in strategy`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let cases = $crate::test_runner::resolve_cases(config.cases);
                let max_attempts = cases.saturating_mul(10).max(10);
                let mut accepted: u32 = 0;
                let mut attempt: u32 = 0;
                while accepted < cases && attempt < max_attempts {
                    let mut rng = $crate::test_runner::TestRng::deterministic(
                        concat!(module_path!(), "::", stringify!($name)),
                        attempt,
                    );
                    attempt += 1;
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "property `{}` failed at attempt {} (of {} cases): {}",
                                stringify!($name),
                                attempt,
                                cases,
                                msg
                            );
                        }
                    }
                }
                // Mirror real proptest's too-many-global-rejects abort:
                // a suite whose `prop_assume!`s exhaust the attempt
                // budget must not report a (possibly vacuous) pass.
                if accepted < cases {
                    panic!(
                        "property `{}` ran only {} of {} cases: {} of {} attempts were rejected by prop_assume! — loosen the strategy or the assumption",
                        stringify!($name),
                        accepted,
                        cases,
                        attempt - accepted,
                        attempt
                    );
                }
            }
        )*
    };
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $($(#[$meta])* fn $name($($arg in $strat),*) $body)*
        }
    };
}

/// Picks uniformly among the listed strategies (all must yield the
/// same value type). Weighted arms are not supported by the shim.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// `assert!` for property bodies: fails the case instead of panicking
/// directly, so the runner can report the attempt index.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` == `{:?}`: {}",
                left,
                right,
                format!($($fmt)+)
            )));
        }
    }};
}

/// `assert_ne!` for property bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                left, right
            )));
        }
    }};
}

/// Rejects the current case (the runner draws a replacement, within
/// the 10× attempt budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
