//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for generating values of one type.
///
/// Unlike the real crate there is no value tree and no shrinking:
/// `generate` draws a single value.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type (used by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased strategy.
#[derive(Clone)]
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among same-typed strategies (backs
/// [`crate::prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; `options` must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128 + 1) as u128;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
