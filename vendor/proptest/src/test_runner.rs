//! Case-count configuration, the deterministic RNG, and the error type
//! threaded through property bodies.

/// Per-suite configuration; only `cases` is meaningful to the shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per property.
    pub cases: u32,
    /// Accepted for compatibility; the shim never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// Applies the `PROPTEST_CASES` environment override to a suite's
/// configured case count (tier-1 uses this to bound runtimes).
pub fn resolve_cases(configured: u32) -> u32 {
    match std::env::var("PROPTEST_CASES") {
        Ok(v) => v.parse().unwrap_or(configured),
        Err(_) => configured,
    }
    .max(1)
}

/// How a single drawn case ended, when not `Ok`.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; draw replacements.
    Reject,
    /// A `prop_assert*!` failed with this message.
    Fail(String),
}

/// Deterministic per-case generator (SplitMix64 seeded from the test
/// name and attempt index) — equal (test, attempt) pairs generate
/// equal inputs on every run, so failures reproduce by rerunning.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test identifier and attempt index.
    pub fn deterministic(test_name: &str, attempt: u32) -> Self {
        // FNV-1a over the name, mixed with the attempt.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            state: hash ^ ((attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Returns the next pseudo-random 64-bit word (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}
